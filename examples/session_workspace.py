#!/usr/bin/env python3
"""Session workspace walk-through: warm caches, policies and registries.

Demonstrates what the Session API adds over calling the pipeline stages by
hand:

* **content-hash caching** — the second run of every stage is a warm
  reload (no generation, no parsing, no simulation), timed side by side,
* **execution policies** — the same stages under a process pool,
* **extension registries** — a registered workload preset and a registered
  custom analysis, both first-class cached stages.

Run with ``python examples/session_workspace.py [workspace_dir]``; pass a
persistent directory and run it twice to see cross-process warm starts.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.session import ExecutionPolicy, Session
from repro.simulator import SimulationOptions

RUNS, SEED = 120, 11


def timed(label: str, fn):
    start = time.perf_counter()
    value = fn()
    print(f"  {label:<28s} {time.perf_counter() - start:7.3f}s")
    return value


def main() -> int:
    workspace = (
        Path(sys.argv[1]) if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="spectrends-ws-"))
    )
    print(f"workspace: {workspace}")

    with Session(workspace=workspace) as session:
        print("cold vs warm (same session -> memo, same workspace -> store):")
        timed("dataset (cold)", lambda: session.dataset(runs=RUNS, seed=SEED).result())
        timed("dataset (memo)", lambda: session.dataset(runs=RUNS, seed=SEED).result())
        timed("analysis (cold)", lambda: session.analysis(table1=False).result())
        timed("analysis (memo)", lambda: session.analysis(table1=False).result())

    # A new session over the same workspace: everything reloads from disk.
    with Session(workspace=workspace) as session:
        frame = timed(
            "dataset (warm, new process)",
            lambda: session.dataset(runs=RUNS, seed=SEED).result(),
        )
        print(f"  -> {len(frame)} runs, {len(frame.columns)} columns\n")

        print("registries: new scenario families without touching core modules")
        session.register_workload(
            "short-ladder", SimulationOptions(load_levels=(1.0, 0.5, 0.2, 0.0))
        )
        session.register_analysis(
            "idle-share",
            lambda runs: float((runs["power_idle"] / runs["power_100"]).mean()),
        )
        sweep = session.campaign(
            {
                "name": "preset-sweep",
                "sweep": {"cpu_model": ["Xeon X5670", "EPYC 9654"], "seed": [1, 2]},
            },
            workload="short-ladder",
        ).result()
        print(f"  campaign: {sweep.describe().splitlines()[0]}")
        idle_share = session.analysis(name="idle-share").result()
        print(f"  registered analysis idle-share = {idle_share:.3f}\n")

    print("the same stages under a process pool (results are bit-identical):")
    policy = ExecutionPolicy(mode="process", workers=4)
    with Session(workspace=workspace, policy=policy) as session:
        pooled = session.dataset(runs=RUNS, seed=SEED).result()
        print(f"  -> warm even under a new policy: {len(pooled)} runs "
              "(policies never enter content keys)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
