#!/usr/bin/env python3
"""Efficiency and power trends (Figures 2 and 3, Table I).

Generates (or reuses) a corpus, then reproduces the power-per-socket and
overall-efficiency trends, prints the era comparisons quoted in the paper's
text, renders the figures as SVG, and finishes with the Table I comparison
of the two Lenovo systems.

Run with ``python examples/efficiency_trends.py [corpus_dir]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import Session
from repro.core import apply_paper_filters, figure2, figure3, table1
from repro.core.trends import power_era_comparisons
from repro.plotting import ascii_scatter
from repro.stats import bin_by_year


def main() -> int:
    session = Session()
    if len(sys.argv) > 1 and Path(sys.argv[1]).is_dir() and list(Path(sys.argv[1]).glob("*.txt")):
        dataset = session.dataset(corpus=Path(sys.argv[1]))
    else:
        corpus_dir = Path(tempfile.mkdtemp(prefix="specpower-trends-")) / "corpus"
        print(f"Generating a 400-run corpus in {corpus_dir} ...")
        dataset = session.dataset(
            corpus=session.corpus(runs=400, seed=11, directory=corpus_dir)
        )

    runs = dataset.result()
    filtered, _ = apply_paper_filters(runs)
    print(f"{len(filtered)} analysable runs")

    # Era comparisons quoted in Section III.
    print("\nPower growth between eras (paper: 119.0 W -> 303.3 W, ~2.5x at full load):")
    for finding in power_era_comparisons(filtered):
        print("  " + finding.describe())

    # Yearly means of overall efficiency, split by vendor.
    yearly = bin_by_year(filtered, "overall_efficiency", group_columns=["cpu_vendor"])
    print("\nYearly mean overall efficiency (ssj_ops/W):")
    for row in yearly.to_records():
        if row["count"] >= 3:
            print(f"  {row['hw_avail_year']}  {row['cpu_vendor']:6s} "
                  f"{row['mean']:10.0f}  (n={row['count']})")

    # Terminal preview of Figure 3, then SVG output of Figures 2 and 3.
    usable = filtered.dropna(["hw_avail_decimal", "overall_efficiency"])
    print("\n" + ascii_scatter(
        usable["hw_avail_decimal"].to_list(),
        usable["overall_efficiency"].to_list(),
        title="Overall ssj_ops/W over hardware availability date",
    ))

    figures_dir = corpus_dir.parent / "figures"
    for artifact in (figure2(filtered), figure3(filtered)):
        for path in artifact.save(figures_dir):
            print(f"wrote {path}")

    print("\nTable I (SPEC Power vs SPEC CPU, AMD/Intel factor):")
    for row in table1():
        print(f"  {row.benchmark:18s} {row.system:22s} measured {row.result:>10.1f} "
              f"(factor {row.factor:.2f}, paper factor {row.paper_factor:.2f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
