"""Fair-share scheduler benchmarks: small-job latency under a live sweep.

The headline claim of the scheduler is *fairness under load*: a small job
submitted while a large sweep saturates the worker pool must complete in
roughly its uncontended time, not after the sweep.
``test_scheduler_fairness_proof`` pins that ordering unconditionally; the
timed benchmarks put numbers on the cold submit-to-complete path and on
small-job latency while a sweep is actually occupying the pool, and are
gated by the CI baseline.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.campaign import CampaignSpec, stream_campaign
from repro.service import CampaignService, ServiceClient

#: Cheapest valid unit: one measured level plus active idle, no noise draws.
FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}

#: Distinct seed ranges per submission so no job ever hits the service's
#: shared results cache: every benchmarked job does real simulation work.
_SEED_BLOCKS = itertools.count(start=1)


def fresh_payload(name: str, units: int) -> dict:
    start = next(_SEED_BLOCKS) * 100_000
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": ["EPYC 9654"], "seed": list(range(start, start + units))},
        base=FAST_BASE,
    ).to_dict()


# --------------------------------------------------------------------------- #
# Fairness proof (not a timed benchmark: one interleaving, one ordering)
# --------------------------------------------------------------------------- #
def test_scheduler_fairness_proof(tmp_path):
    """A 16-unit job overtakes a 4096-unit sweep; its result stays serial."""
    service = CampaignService(tmp_path / "root", shard_size=64, pool=2)
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=300.0)
        sweep = client.submit(fresh_payload("bench-sweep", 4096))
        deadline = time.monotonic() + 60.0
        while client.status(sweep["job"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.05)

        small_payload = fresh_payload("bench-small", 16)
        start = time.perf_counter()
        small = client.submit(small_payload, shard_size=4)
        result = client.wait(small["job"])
        small_s = time.perf_counter() - start

        sweep_state = client.status(sweep["job"])["state"]
        print(
            f"\n16-unit job under a 4096-unit sweep: {small_s:.2f}s "
            f"(sweep still {sweep_state})"
        )
        assert result["state"] == "complete" and result["completed"] == 16
        assert sweep_state in {"queued", "running", "finalizing"}

        serial = stream_campaign(
            CampaignSpec.from_dict(small_payload), tmp_path / "serial", shard_size=4
        )
        assert result["aggregate"] == serial.aggregate.to_dict()
        assert client.wait(sweep["job"])["completed"] == 4096
    finally:
        service.stop()


# --------------------------------------------------------------------------- #
# Timed benchmarks (gated by the CI baseline)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="scheduler")
def test_bench_scheduler_cold_job(benchmark, tmp_path):
    """Uncontended submit-to-complete: 64 fresh units through the pool."""
    service = CampaignService(tmp_path / "root", shard_size=16, pool=2)
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=300.0)

        def cold():
            job = client.submit(fresh_payload("bench-cold", 64))
            return client.wait(job["job"])

        result = benchmark(cold)
        assert result["state"] == "complete" and result["completed"] == 64
    finally:
        service.stop()


@pytest.mark.benchmark(group="scheduler")
def test_bench_scheduler_small_latency_under_sweep(benchmark, tmp_path):
    """Small-job latency while a mega-sweep occupies the whole pool."""
    service = CampaignService(tmp_path / "root", shard_size=32, pool=2)
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=300.0)
        sweep = client.submit(fresh_payload("bench-bg-sweep", 40_000))

        def contended():
            job = client.submit(fresh_payload("bench-latency", 16), shard_size=4)
            return client.wait(job["job"])

        result = benchmark(contended)
        assert result["state"] == "complete" and result["completed"] == 16
        client.cancel(sweep["job"])
    finally:
        service.stop()
