"""Figure 4: relative efficiency distributions at 60-90 % load (experiment E4).

Paper reference: early systems are clearly less efficient at partial load
(relative efficiency < 1); Intel's mean exceeds 1 at >= 70 % load from 2012
and regresses towards ~1 after 2017; AMD approaches 1 around 2021.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_rows
from repro.core import figure4


def _mean_median(data, vendor, years, level=70):
    rows = [
        r for r in data.to_records()
        if r["vendor"] == vendor and r["year"] in years and r["load_level"] == level
        and r["median"] is not None and r["count"] > 0
    ]
    if not rows:
        return float("nan")
    return float(np.mean([r["median"] for r in rows]))


@pytest.mark.benchmark(group="figure4")
def test_bench_figure4(benchmark, paper_filtered):
    artifact = benchmark(figure4, paper_filtered)
    data = artifact.data
    early_intel = _mean_median(data, "Intel", range(2006, 2010))
    mid_intel = _mean_median(data, "Intel", range(2012, 2017))
    late_intel = _mean_median(data, "Intel", range(2018, 2025))
    early_amd = _mean_median(data, "AMD", range(2006, 2012))
    late_amd = _mean_median(data, "AMD", range(2021, 2025))
    print_rows(
        "Figure 4: median relative efficiency at 70% load",
        [
            {"group": "Intel 2006-2009", "median": round(early_intel, 3), "paper": "<1"},
            {"group": "Intel 2012-2016", "median": round(mid_intel, 3), "paper": ">1"},
            {"group": "Intel 2018-2024", "median": round(late_intel, 3), "paper": "~1"},
            {"group": "AMD 2006-2011", "median": round(early_amd, 3), "paper": "<1"},
            {"group": "AMD 2021-2024", "median": round(late_amd, 3), "paper": "~1"},
        ],
    )
    # Shape checks of the paper's qualitative statements.
    assert early_intel < 1.0
    assert mid_intel > 1.0
    assert abs(late_intel - 1.0) < 0.1
    assert early_amd < 1.0
    assert late_amd > 0.93
