"""Batch kernel benchmarks: vectorized vs scalar simulation of a campaign.

The headline number of the batch subsystem: a 100-unit campaign grid
(4 catalog generations x 25 seeds, full graduated ladder, measurement noise
on) simulated in one :class:`BatchDirector` call versus one scalar
:class:`RunDirector` run per unit.  The batch path evaluates the power model
as ``(runs x levels)`` matrices and reproduces the scalar results
bit-for-bit, so the speedup is pure overhead removal — the assertion below
keeps CI honest about the floor.

The floor was originally 10x, measured while every scalar ``RunDirector``
construction rebuilt the default catalog from scratch; memoizing
``default_catalog()`` made the scalar baseline ~8x faster (honest compute,
no repeated catalog interpolation), which shrinks the *relative* batch win
to ~6-7x on an idle machine.  5x is the guarded floor over that fair
baseline.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import CampaignSpec
from repro.simulator import BatchDirector, RunDirector, SimulationOptions

#: 4 generations x 25 seeds = 100 units on the full graduated ladder.
BATCH_SPEC = {
    "name": "bench-batch",
    "sweep": {
        "cpu_model": ["Xeon X5670", "Xeon E5-2699 v4",
                      "Xeon Platinum 8480+", "EPYC 9654"],
        "seed": list(range(25)),
    },
}

#: Guarded floor over the fair (catalog-memoized) scalar baseline; measured
#: speedups sit near 6-7x on an idle machine.
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def campaign_units():
    units = CampaignSpec.from_dict(BATCH_SPEC).expand()
    assert len(units) == 100
    plans = [unit.plan for unit in units]
    seeds = [unit.seed for unit in units]
    return plans, seeds, units[0].options


def _run_scalar(plans, seeds, options):
    return [
        RunDirector(options=options, corpus_seed=seed).run(plan)
        for plan, seed in zip(plans, seeds)
    ]


def _run_batch(plans, seeds, options):
    return BatchDirector(options=options).run_batch(plans, seeds=seeds)


@pytest.mark.benchmark(group="batch")
def test_bench_batch_director(benchmark, campaign_units):
    """Vectorized simulation of all 100 units in one call."""
    plans, seeds, options = campaign_units
    results = benchmark(_run_batch, plans, seeds, options)
    assert len(results) == 100
    assert all(run.full_load.average_power_w > 0 for run in results)


@pytest.mark.benchmark(group="batch")
def test_bench_scalar_director(benchmark, campaign_units):
    """The same 100 units through the scalar per-run director."""
    plans, seeds, options = campaign_units
    results = benchmark(_run_scalar, plans, seeds, options)
    assert len(results) == 100


@pytest.mark.benchmark(group="batch")
def test_bench_batch_speedup(benchmark, campaign_units, request):
    """BatchDirector must beat the per-run RunDirector by >= MIN_SPEEDUP."""
    plans, seeds, options = campaign_units

    scalar_seconds = min(
        _timed(_run_scalar, plans, seeds, options) for _ in range(3)
    )
    batch_seconds = min(
        _timed(_run_batch, plans, seeds, options) for _ in range(3)
    )
    speedup = scalar_seconds / batch_seconds
    print(f"\nbatch kernel: scalar {scalar_seconds * 1000:.1f} ms vs "
          f"batch {batch_seconds * 1000:.1f} ms -> {speedup:.1f}x")
    # The hard floor gates dedicated benchmark runs (the CI bench job, which
    # passes --benchmark-only); inside the plain test suite wall-clock
    # assertions would just add flake on contended runners, so the measured
    # ratio is reported without failing the run.
    if request.config.getoption("--benchmark-only"):
        assert speedup >= MIN_SPEEDUP
    elif speedup < MIN_SPEEDUP:
        print(f"warning: speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x "
              "floor (not enforced outside --benchmark-only runs)")

    # Register the batched timing with pytest-benchmark as well, so the
    # regression gate sees this test under --benchmark-only.
    scalar_results = _run_scalar(plans, seeds, options)
    batch_results = benchmark(_run_batch, plans, seeds, options)
    # The speedup is free of result drift: batched output is bit-for-bit
    # the scalar output, run by run.
    assert all(
        batch_run.full_load.average_power_w == scalar_run.full_load.average_power_w
        for batch_run, scalar_run in zip(batch_results, scalar_results)
    )


@pytest.mark.benchmark(group="batch")
def test_bench_batch_noise_free(benchmark, campaign_units):
    """Noise-free batch simulation (the exact-reproducibility mode)."""
    plans, seeds, _ = campaign_units
    options = SimulationOptions(measurement_noise=False)
    results = benchmark(_run_batch, plans, seeds, options)
    assert len(results) == 100


def _timed(func, *args):
    start = time.perf_counter()
    func(*args)
    return time.perf_counter() - start
