"""Fault-injection overhead gates: hooks must be free when no plan is armed.

The robustness plane's contract mirrors the tracing one
(:mod:`benchmarks.test_bench_obs`):

* **disabled is (near) free** — every instrumented site calls
  :func:`repro.faults.fault_point`, which with no plan installed is one
  module-global ``is None`` check.  The gate bounds the *entire* disabled
  cost analytically: (number of hook invocations a 512-unit stream makes)
  x (measured per-call no-plan cost) must stay under 5% of the stream's
  own wall time.  The invocation count is measured exactly, by installing
  an *empty* plan (no rules, so nothing fires) whose per-site counters
  record every call.

* **an armed-but-quiet plan does not change results** — a stream run under
  an installed empty plan is bit-identical to a plain run.

The timed benchmarks feed the committed baseline so a future change that
moves a hook into a hotter loop (or makes the disabled check heavier)
shows up in ``check_bench_regression.py``.
"""

from __future__ import annotations

import time
import timeit

import pytest

from repro.campaign import resume_streaming, stream_campaign
from repro.campaign.spec import CampaignSpec
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    clear_fault_plan,
    fault_point,
    install_fault_plan,
)
from repro.session.policy import ExecutionPolicy

#: Disabled fault hooks may cost at most this fraction of stream wall.
OVERHEAD_BUDGET = 0.05

#: Cheapest valid unit, same shape as the other streaming benchmarks.
FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def wide_spec(name: str, units: int) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={
            "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
            "seed": list(range(units // 2)),
        },
        base=FAST_BASE,
    )


def test_disabled_fault_hooks_overhead_under_5pct(tmp_path):
    """count(fault_point calls) x cost(no-plan call) < 5% of stream wall."""
    counting = FaultPlan()  # no rules: counts every hook call, fires nothing
    install_fault_plan(counting)
    try:
        spec = wide_spec("fault-overhead", 512)
        start = time.perf_counter()
        result = stream_campaign(spec, tmp_path / "store", shard_size=128)
        wall = time.perf_counter() - start
    finally:
        clear_fault_plan()
    assert result.simulated == 512 and result.is_complete

    calls = sum(counting.counters.values())
    assert calls > 0 and not counting.fired
    # unit.execute is the only per-unit site; everything else is per
    # shard / chunk / append.  A hook drifting into a per-load-level or
    # per-row loop would blow straight through this.
    assert calls < 2 * result.total_units + 60 * result.total_shards + 60, (
        f"{calls} fault-point calls for {result.total_units} units / "
        f"{result.total_shards} shards - did a hook move into a hot loop?"
    )

    per_call = min(
        timeit.repeat(
            lambda: fault_point("unit.execute", ctx="probe"),
            number=100_000,
            repeat=3,
        )
    ) / 100_000
    overhead = calls * per_call
    assert overhead < OVERHEAD_BUDGET * wall, (
        f"disabled fault hooks cost {overhead:.6f}s "
        f"({calls} calls x {per_call * 1e9:.0f}ns) against a {wall:.3f}s "
        f"stream - over the {OVERHEAD_BUDGET:.0%} budget"
    )


def test_armed_quiet_plan_bit_identical_to_plain(tmp_path):
    """An installed plan with no firing rules must not move a single bit."""
    spec = wide_spec("fault-identity", 256)
    plain = stream_campaign(spec, tmp_path / "plain", shard_size=64)
    armed = stream_campaign(
        spec,
        tmp_path / "armed",
        shard_size=64,
        policy=ExecutionPolicy(faults=FaultPlan(), retry=RetryPolicy()),
        retry=RetryPolicy(),
    )
    assert armed.simulated == plain.simulated == 256
    assert armed.aggregate.equals(plain.aggregate)
    assert armed.frame().equals(plain.frame())


# --------------------------------------------------------------------------- #
# Timed benchmarks (gated by the CI baseline)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="faults")
def test_bench_faults_disabled_stream(benchmark, tmp_path):
    """Cold 512-unit stream on the production path: hooks present, no plan."""
    spec = wide_spec("bench-faults-off", 512)
    counter = {"i": 0}

    def plain():
        counter["i"] += 1
        return stream_campaign(
            spec, tmp_path / f"store-{counter['i']}", shard_size=128
        )

    result = benchmark(plain)
    assert result.simulated == 512 and result.is_complete


@pytest.mark.benchmark(group="faults")
def test_bench_faults_chaos_recovery(benchmark, tmp_path):
    """512-unit stream with transient injected failures, retry, and resume.

    The recovery tax: every benchmark round injects two raise faults into
    unit execution and one torn shard flush, retries the units inline,
    heals the torn artifact through a resume, and must still land the full
    row count.
    """
    spec = wide_spec("bench-faults-chaos", 512)
    retry = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_cap=0.002)
    counter = {"i": 0}

    def chaotic():
        counter["i"] += 1
        store = tmp_path / f"store-{counter['i']}"
        plan = FaultPlan.from_dict(
            {
                "seed": counter["i"],
                "rules": [
                    {
                        "site": "unit.execute",
                        "kind": "raise",
                        "probability": 1.0,
                        "times": 2,
                    },
                    {"site": "shard.flush", "kind": "partial_write", "nth": 1},
                ],
            }
        )
        stream_campaign(
            spec,
            store,
            shard_size=128,
            policy=ExecutionPolicy(faults=plan, retry=retry),
            retry=retry,
        )
        return resume_streaming(store, retry=retry)

    result = benchmark(chaotic)
    assert result.is_complete and not result.failures
