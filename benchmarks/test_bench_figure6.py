"""Figure 6: extrapolated idle quotient (experiment E6).

Paper reference: the quotient (idle power extrapolated from the 10 %/20 %
points divided by the measured active idle power) trends upward from ~1 in
the earliest systems, with a large spread in recent submissions.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_rows
from repro.core import figure6
from repro.stats import bin_by_year, linear_fit


@pytest.mark.benchmark(group="figure6")
def test_bench_figure6(benchmark, paper_filtered):
    artifact = benchmark(figure6, paper_filtered)
    yearly = bin_by_year(artifact.data, "extrapolated_idle_quotient")
    print_rows("Figure 6 yearly mean extrapolated idle quotient",
               [{"year": r["hw_avail_year"], "mean": round(r["mean"], 2),
                 "std": round(r["std"], 2) if r["std"] == r["std"] else None,
                 "n": r["count"]}
                for r in yearly.to_records()])
    records = yearly.to_records()
    early = [r for r in records if r["hw_avail_year"] <= 2008]
    late = [r for r in records if r["hw_avail_year"] >= 2015]
    early_mean = np.mean([r["mean"] for r in early])
    late_mean = np.mean([r["mean"] for r in late])
    # Upward trend: idle-specific optimisation became much more effective.
    assert early_mean < 1.3
    assert late_mean > early_mean + 0.2


@pytest.mark.benchmark(group="figure6")
def test_bench_quotient_trend_and_spread(benchmark, paper_filtered):
    def fit_and_spread():
        data = paper_filtered.dropna(["extrapolated_idle_quotient", "hw_avail_decimal"])
        fit = linear_fit(
            data["hw_avail_decimal"].to_list(),
            data["extrapolated_idle_quotient"].to_list(),
        )
        recent = data.filter(data["hw_avail_year"] >= 2020)["extrapolated_idle_quotient"]
        early = data.filter(data["hw_avail_year"] <= 2010)["extrapolated_idle_quotient"]
        return fit, float(early.std()), float(recent.std())

    fit, early_spread, recent_spread = benchmark(fit_and_spread)
    print_rows("Quotient trend line and spread",
               [{"slope_per_year": round(fit.slope, 4),
                 "early_std": round(early_spread, 2),
                 "recent_std": round(recent_spread, 2)}])
    assert fit.slope > 0  # overall upward trend
    assert recent_spread > early_spread  # larger spread in newer runs
