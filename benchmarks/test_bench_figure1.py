"""Figure 1 + Section II demographics (experiment E1).

Paper reference values: 1017 downloaded, 960 parsed, 676 analysed;
44.2 submissions per year on average (15.2 during 2013-2017);
Linux share 2.2 % -> 36.3 % and AMD share 13.0 % -> 31.3 % around 2018.
"""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core import apply_paper_filters, figure1, share_shift, submissions_per_year


@pytest.mark.benchmark(group="figure1")
def test_bench_figure1(benchmark, paper_runs):
    artifact = benchmark(figure1, paper_runs)
    assert {"counts", "os", "cpu_vendor", "sockets", "nodes"} == set(artifact.charts)
    print_rows("Figure 1 per-year demographics (first/last 3 years)",
               artifact.data.head(3).to_records() + artifact.data.tail(3).to_records())


@pytest.mark.benchmark(group="figure1")
def test_bench_dataset_funnel(benchmark, paper_runs):
    filtered, report = benchmark(apply_paper_filters, paper_runs)
    rows = report.to_rows()
    print_rows("Section II filter funnel (paper: 9 / 6 / 269 removed, 676 kept)", rows)
    # Shape: the multi-node/socket filter removes by far the most runs.
    assert report.removed_by("multi_node_or_gt2_sockets") > report.removed_by("non_server_cpu")
    assert len(filtered) > 0.6 * len(paper_runs)


@pytest.mark.benchmark(group="figure1")
def test_bench_share_shifts(benchmark, paper_runs):
    def shifts():
        return {
            "linux": share_shift(paper_runs, "is_linux"),
            "amd": share_shift(paper_runs, "is_amd"),
            "submissions": [f.measured_value for f in submissions_per_year(paper_runs)],
        }

    result = benchmark(shifts)
    print_rows(
        "Share shifts around 2018 (paper: Linux 2.2%->36.3%, AMD 13.0%->31.3%)",
        [
            {"metric": "linux_before", "value": round(result["linux"][0], 3),
             "paper": 0.022},
            {"metric": "linux_after", "value": round(result["linux"][1], 3),
             "paper": 0.363},
            {"metric": "amd_before", "value": round(result["amd"][0], 3), "paper": 0.130},
            {"metric": "amd_after", "value": round(result["amd"][1], 3), "paper": 0.313},
        ],
    )
    assert result["linux"][1] > result["linux"][0]
    assert result["amd"][1] > result["amd"][0]
