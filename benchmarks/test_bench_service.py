"""Campaign service benchmarks: worker-pool throughput + protocol overhead.

The headline claim of the service layer is that a worker pool buys real
wall-clock throughput without giving up determinism:
``test_worker_pool_speedup_2k_units`` runs the same ~2k-unit campaign
serially and with four lease-coordinated workers, asserts bit-identical
aggregates unconditionally, and asserts a speedup floor when the machine
actually has cores to fan out over (``os.cpu_count() >= 4`` — on smaller
runners the identity check still runs, the floor does not).  The timed
benchmarks cover the cold worker-pool path and the service socket's
dedup round-trip, and are gated by the CI baseline.

Scale knobs: ``REPRO_SERVICE_BENCH_UNITS`` overrides the 2048-unit count
for quick local runs (the committed speedup floor assumes the default).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import CampaignSpec, stream_campaign
from repro.service import CampaignService, ServiceClient

#: Cheapest valid unit: one measured level plus active idle, no noise draws.
FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}

#: Floor on the 4-worker / serial wall-clock ratio.  Four workers on four
#: cores measure well above 2x on this workload; 1.4x leaves room for
#: shared-runner noise while still failing if the pool ever serialises.
SPEEDUP_FLOOR = 1.4


def wide_spec(name: str, units: int) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={
            "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
            "seed": list(range(units // 2)),
        },
        base=FAST_BASE,
    )


# --------------------------------------------------------------------------- #
# Throughput proof (not a timed benchmark: two runs, one ratio)
# --------------------------------------------------------------------------- #
def test_worker_pool_speedup_2k_units(tmp_path):
    """4 workers beat serial on ~2k units; results stay bit-identical."""
    units = int(os.environ.get("REPRO_SERVICE_BENCH_UNITS", "2048"))
    spec = wide_spec("pool-throughput", units)

    start = time.perf_counter()
    serial = stream_campaign(spec, tmp_path / "serial", shard_size=128)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = stream_campaign(spec, tmp_path / "pooled", shard_size=128, workers=4)
    pooled_s = time.perf_counter() - start

    assert serial.simulated == units and pooled.n_workers == 4
    assert pooled.is_complete and not pooled.failures
    assert pooled.frame().equals(serial.frame())
    assert pooled.aggregate.equals(serial.aggregate)

    speedup = serial_s / pooled_s
    print(
        f"\n{units} units: serial {serial_s:.2f}s, 4 workers {pooled_s:.2f}s "
        f"(speedup {speedup:.2f}x, {os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4-worker pool managed only {speedup:.2f}x over serial "
            f"(floor {SPEEDUP_FLOOR}x) - the pool is serialising"
        )


# --------------------------------------------------------------------------- #
# Timed benchmarks (gated by the CI baseline)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="service")
def test_bench_worker_pool_cold(benchmark, tmp_path):
    """Cold 2-worker pool over 256 units: fork, claim, flush, finalize."""
    spec = wide_spec("bench-pool-cold", 256)
    counter = {"i": 0}

    def cold():
        counter["i"] += 1
        return stream_campaign(
            spec, tmp_path / f"store-{counter['i']}", shard_size=64, workers=2
        )

    result = benchmark(cold)
    assert result.is_complete and result.n_workers == 2
    assert result.total_shards == 4


@pytest.mark.benchmark(group="service")
def test_bench_service_dedup_roundtrip(benchmark, tmp_path):
    """Socket round-trip onto a finished job: submit dedup + result fetch."""
    service = CampaignService(tmp_path / "root", shard_size=64)
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=120.0)
        payload = wide_spec("bench-roundtrip", 128).to_dict()
        first = client.submit(payload)
        client.wait(first["job"])

        def roundtrip():
            job = client.submit(payload)
            return job, client.result(job["job"])

        job, result = benchmark(roundtrip)
        assert job["deduped"] and job["job"] == first["job"]
        assert result["state"] == "complete" and result["completed"] == 128
    finally:
        service.stop()
