"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper on a
paper-scale synthetic corpus (960 parsed runs, 1017 files) that is generated
once per session.  Each benchmark times the analysis step that produces the
artefact and prints the rows/series the paper reports so the shapes can be
compared side by side (run ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

import pytest

from repro.api import generate_corpus, load_dataset
from repro.core.filters import apply_paper_filters
from repro.frame import Frame
from repro.parallel import ParallelConfig

PAPER_RUNS = 960
PAPER_SEED = 2024


def pytest_addoption(parser):
    parser.addoption(
        "--corpus-runs", action="store", type=int, default=PAPER_RUNS,
        help="number of defect-free synthetic runs used by the benchmarks",
    )


@pytest.fixture(scope="session")
def paper_corpus_dir(tmp_path_factory, request) -> str:
    directory = tmp_path_factory.mktemp("paper_corpus")
    runs = request.config.getoption("--corpus-runs")
    generate_corpus(
        directory,
        total_parsed_runs=runs,
        seed=PAPER_SEED,
        parallel=ParallelConfig(backend="process", chunk_size=64),
    )
    return str(directory)


@pytest.fixture(scope="session")
def paper_runs(paper_corpus_dir) -> Frame:
    return load_dataset(
        paper_corpus_dir, parallel=ParallelConfig(backend="process", chunk_size=64)
    )


@pytest.fixture(scope="session")
def paper_filtered(paper_runs) -> Frame:
    filtered, _ = apply_paper_filters(paper_runs)
    return filtered


def print_rows(title: str, rows) -> None:
    """Uniform row printer used by every benchmark."""
    print(f"\n--- {title} ---")
    for row in rows:
        print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))
