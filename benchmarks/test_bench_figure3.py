"""Figure 3: overall efficiency trend (experiment E3).

Paper reference: overall ssj_ops/W grows continuously; AMD drives the trend
from ~2018 on and holds 98 of the 100 most efficient runs.
"""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core import figure3, top_n_vendor_share
from repro.stats import bin_by_year


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3(benchmark, paper_filtered):
    artifact = benchmark(figure3, paper_filtered)
    yearly = bin_by_year(artifact.data, "overall_efficiency", group_columns=["cpu_vendor"])
    recent = yearly.filter(yearly["hw_avail_year"] >= 2019)
    print_rows("Figure 3 yearly mean overall efficiency (ssj_ops/W) since 2019",
               [{"year": r["hw_avail_year"], "vendor": r["cpu_vendor"],
                 "mean": round(r["mean"], 0), "n": r["count"]}
                for r in recent.to_records()])
    assert len(artifact.data) > 100


@pytest.mark.benchmark(group="figure3")
def test_bench_top100_vendor_share(benchmark, paper_filtered):
    share = benchmark(top_n_vendor_share, paper_filtered, "AMD", 100)
    print_rows("AMD share of the 100 most efficient runs",
               [{"measured": round(share, 2), "paper": 0.98}])
    assert share > 0.8


@pytest.mark.benchmark(group="figure3")
def test_bench_efficiency_growth(benchmark, paper_filtered):
    def growth():
        yearly = bin_by_year(paper_filtered, "overall_efficiency")
        records = yearly.to_records()
        early = [r for r in records if r["hw_avail_year"] <= 2010]
        late = [r for r in records if r["hw_avail_year"] >= 2022]
        early_mean = sum(r["mean"] * r["count"] for r in early) / sum(r["count"] for r in early)
        late_mean = sum(r["mean"] * r["count"] for r in late) / sum(r["count"] for r in late)
        return early_mean, late_mean

    early_mean, late_mean = benchmark(growth)
    print_rows("Overall efficiency growth", [{
        "mean_up_to_2010": round(early_mean, 0),
        "mean_since_2022": round(late_mean, 0),
        "ratio": round(late_mean / early_mean, 1),
    }])
    assert late_mean > 5 * early_mean
