"""Lazy plan engine benchmarks: fusion speedup + out-of-core scan proof.

Two claims ride on the planner.  First, filter→groupby fusion (predicate
evaluated on the unfiltered frame so the memoized group codes are reused)
must beat the eager filter-then-groupby chain by a guarded floor.  Second,
the streamed ``.npz`` scan must keep a filtered aggregation over a
larger-than-budget artifact set inside a fixed peak-RSS budget while
reading strictly fewer bytes than the artifacts hold — the subprocess
measures both, the way the shard benchmarks prove bounded streaming.

Scale knobs: ``REPRO_LAZY_BENCH_ROWS`` overrides the per-artifact row
count of the out-of-core proof (the committed budget assumes the default).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.frame import Frame, col

#: Peak-RSS budget for the out-of-core scan.  The artifact set measures
#: ~216 MiB on disk (8 artifacts x 27 MiB), so a full materialisation plus
#: the interpreter could not fit; the streamed scan holds one chunk plus
#: the survivors and peaks far below.
RSS_BUDGET_MIB = 160

#: Guarded fusion floor; measured speedups sit near 1.5-1.7x on an idle
#: machine (string+int keys, 400k rows, 50%-selective predicate).
MIN_FUSION_SPEEDUP = 1.2


# --------------------------------------------------------------------------- #
# Out-of-core proof (not a timed benchmark: one subprocess, two assertions)
# --------------------------------------------------------------------------- #
_OOC_SCRIPT = """
import json, os, resource, sys
import numpy as np
sys.path.insert(0, sys.argv[1])
from repro.frame import SCAN_STATS, col, concat_lazy, scan_npz

directory = sys.argv[2]
n_artifacts = int(sys.argv[3])
rows = int(sys.argv[4])
os.makedirs(directory, exist_ok=True)

meta = [
    {"name": "f0", "kind": "float"},
    {"name": "f1", "kind": "float"},
    {"name": "f2", "kind": "float"},
    {"name": "g", "kind": "int"},
]
paths = []
total_bytes = 0
for i in range(n_artifacts):
    rng = np.random.default_rng(i)
    arrays = {
        "masks": np.zeros((4, rows), dtype=bool),
        "float": rng.random((3, rows)),
        "int": rng.integers(0, 50, (1, rows)),
    }
    path = os.path.join(directory, f"part{i}.npz")
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    del arrays
    total_bytes += os.path.getsize(path)
    paths.append(path)

SCAN_STATS.reset()
plan = (
    concat_lazy([scan_npz(path, meta) for path in paths])
    .filter(col("f0") > 0.99)
    .groupby(["g"])
    .agg({"m": ("f1", "mean"), "n": ("g", "count")})
)
summary = plan.collect()

peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak_kb /= 1024  # macOS reports bytes
print(json.dumps({
    "peak_mib": peak_kb / 1024,
    "total_mib": total_bytes / (1024 * 1024),
    "bytes_read": SCAN_STATS.bytes_read,
    "total_bytes": total_bytes,
    "groups": len(summary),
    "matches": int(sum(summary["n"].values)),
}))
"""


def test_lazy_scan_out_of_core_bounded_rss(tmp_path):
    """A filtered aggregation over ~216 MiB of artifacts stays in budget."""
    rows = int(os.environ.get("REPRO_LAZY_BENCH_ROWS", "750000"))
    src = Path(__file__).resolve().parent.parent / "src"
    proc = subprocess.run(
        [sys.executable, "-c", _OOC_SCRIPT, str(src), str(tmp_path / "parts"),
         "8", str(rows)],
        capture_output=True, text=True, check=True,
    )
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    print(
        f"\n{report['total_mib']:.0f} MiB in artifacts, "
        f"{report['bytes_read'] / 1048576:.1f} MiB read, "
        f"{report['matches']} rows matched into {report['groups']} groups, "
        f"peak RSS {report['peak_mib']:.1f} MiB (budget {RSS_BUDGET_MIB} MiB)"
    )
    assert report["groups"] == 50
    assert 0 < report["matches"] < 8 * rows
    # Pushdown instrument: the scan read strictly less than the artifacts
    # hold (only the predicate column everywhere, the rest where it matched).
    assert 0 < report["bytes_read"] < report["total_bytes"]
    # The artifact set would not fit in the budget; the scan must.
    assert report["total_mib"] > RSS_BUDGET_MIB
    assert report["peak_mib"] < RSS_BUDGET_MIB, (
        f"out-of-core scan peaked at {report['peak_mib']:.1f} MiB, over the "
        f"{RSS_BUDGET_MIB} MiB budget - residency is no longer O(chunk)"
    )


# --------------------------------------------------------------------------- #
# Fusion speedup (floor-gated like the batch-kernel speedup)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def grouped_frame() -> Frame:
    rng = np.random.default_rng(7)
    n = 400_000
    keys = np.array(
        ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"], dtype=object
    )
    return Frame.from_dict({
        "k": list(keys[rng.integers(0, len(keys), n)]),
        "g": list(rng.integers(0, 50, n)),
        "v": list(rng.random(n)),
        "w": list(rng.random(n)),
    })


_FUSION_SPEC = {"m": ("v", "mean"), "s": ("w", "sum"), "n": ("v", "count")}


def _eager_chain(frame: Frame) -> Frame:
    filtered = frame.filter(frame["v"] > 0.5)
    return filtered.groupby(["k", "g"]).agg(_FUSION_SPEC)


def _fused_plan(frame: Frame) -> Frame:
    return (
        frame.lazy()
        .filter(col("v") > 0.5)
        .groupby(["k", "g"])
        .agg(_FUSION_SPEC)
        .collect()
    )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="lazy")
def test_bench_lazy_fusion_speedup(benchmark, grouped_frame, request):
    """Fused filter→groupby must beat the eager chain by >= the floor."""
    eager = _eager_chain(grouped_frame)
    fused = _fused_plan(grouped_frame)  # also fills the codes memo
    assert fused.equals(eager)  # fusion is invisible in the output

    eager_seconds = min(_timed(_eager_chain, grouped_frame) for _ in range(3))
    fused_seconds = min(_timed(_fused_plan, grouped_frame) for _ in range(3))
    speedup = eager_seconds / fused_seconds
    print(f"\nfusion: eager {eager_seconds * 1000:.1f} ms vs "
          f"fused {fused_seconds * 1000:.1f} ms -> {speedup:.2f}x")
    # Hard floor only on dedicated benchmark runs; inside the plain suite a
    # wall-clock assertion would just add flake on contended runners.
    if request.config.getoption("--benchmark-only"):
        assert speedup >= MIN_FUSION_SPEEDUP
    elif speedup < MIN_FUSION_SPEEDUP:
        print(f"warning: fusion speedup {speedup:.2f}x below the "
              f"{MIN_FUSION_SPEEDUP:.1f}x floor (not enforced here)")

    benchmark(_fused_plan, grouped_frame)


# --------------------------------------------------------------------------- #
# Timed benchmarks (gated by the CI baseline)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def scan_artifact(tmp_path_factory):
    """One ~9 MiB columnar artifact + its meta, written once per module."""
    from repro.session.columnar import frame_to_arrays

    rng = np.random.default_rng(11)
    n = 200_000
    frame = Frame.from_dict({
        "g": list(rng.integers(0, 20, n)),
        "v": list(rng.random(n)),
        "w": list(rng.random(n)),
        "x": list(rng.random(n)),
        "y": list(rng.random(n)),
    })
    meta, arrays = frame_to_arrays(frame)
    path = tmp_path_factory.mktemp("lazy-bench") / "artifact.npz"
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    return str(path), meta


@pytest.mark.benchmark(group="lazy")
def test_bench_lazy_scan_filtered(benchmark, scan_artifact):
    """Pushdown scan: 1%-selective predicate, two output columns of five."""
    from repro.frame import scan_npz

    path, meta = scan_artifact

    def scan():
        return (
            scan_npz(path, meta)
            .filter(col("v") > 0.99)
            .select(["g", "w"])
            .collect()
        )

    result = benchmark(scan)
    assert 0 < len(result) < 200_000
    assert result.columns == ["g", "w"]


@pytest.mark.benchmark(group="lazy")
def test_bench_lazy_mmap_open(benchmark, scan_artifact):
    """Opening an artifact as a mapped frame is header work, not IO."""
    from repro.frame import open_frame_npz

    path, meta = scan_artifact
    frame = benchmark(open_frame_npz, path, meta)
    assert len(frame) == 200_000
    assert frame.memory_usage(deep=True)["mapped"].values.sum() > 0
