"""Sharded streaming campaign benchmarks: bounded memory at 100k-unit scale.

The headline claim of the streaming path is that sweep size is bounded by
hardware, not RAM: resident memory is O(shard_size) because each shard's
rows are flushed to a columnar ``.npz`` store artifact before the next shard
starts.  ``test_shard_stream_100k_units_bounded_rss`` proves it end to end —
a 100,000-unit campaign executed in a subprocess must finish under a fixed
peak-RSS budget that the unsharded runner's resident plan + result set could
not fit in.  The timed benchmarks cover the two streaming regimes (cold
execution, warm shard-artifact reload) and are gated by the CI baseline.

Scale knobs: ``REPRO_SHARD_BENCH_UNITS`` overrides the 100k unit count for
quick local runs (the committed budget assumes the default).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import reduce_frame, run_campaign, stream_campaign
from repro.campaign.spec import CampaignSpec

#: Peak-RSS budget for the 100k-unit streaming run.  The interpreter plus
#: NumPy cost ~60 MiB before any campaign work and the streamed run peaks
#: near 70 MiB; a resident 100k-unit expansion with its result rows
#: measures well past 1 GiB, so the budget both bounds the streaming path
#: (with headroom for interpreter/NumPy variance across CI runners) and
#: rules out O(plan) residency outright.
RSS_BUDGET_MIB = 192

#: Cheapest valid unit: one measured level plus active idle, no noise draws.
FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def wide_spec(name: str, units: int) -> CampaignSpec:
    """A ``units``-unit sweep (two CPU generations x units/2 seeds)."""
    return CampaignSpec(
        name=name,
        sweep={
            "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
            "seed": list(range(units // 2)),
        },
        base=FAST_BASE,
    )


# --------------------------------------------------------------------------- #
# Bounded-memory proof (not a timed benchmark: one subprocess, one assertion)
# --------------------------------------------------------------------------- #
_RSS_SCRIPT = """
import json, resource, sys
sys.path.insert(0, sys.argv[1])
from repro.campaign import stream_campaign
from repro.campaign.spec import CampaignSpec

units = int(sys.argv[3])
spec = CampaignSpec(
    name="rss-proof",
    sweep={
        "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
        "seed": list(range(units // 2)),
    },
    base={"load_levels": [1.0, 0.0], "measurement_noise": False},
)
result = stream_campaign(spec, sys.argv[2], shard_size=int(sys.argv[4]))
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak_kb /= 1024  # macOS reports bytes
print(json.dumps({
    "peak_mib": peak_kb / 1024,
    "completed": result.completed,
    "total_units": result.total_units,
    "total_shards": result.total_shards,
    "failures": len(result.failures),
}))
"""


def _stream_in_subprocess(store: Path, units: int, shard_size: int) -> dict:
    src = Path(__file__).resolve().parent.parent / "src"
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_SCRIPT, str(src), str(store),
         str(units), str(shard_size)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_shard_stream_100k_units_bounded_rss(tmp_path):
    """A 100k-unit sharded campaign completes under the fixed RSS budget."""
    units = int(os.environ.get("REPRO_SHARD_BENCH_UNITS", "100000"))
    report = _stream_in_subprocess(tmp_path / "store", units, shard_size=1024)
    print(
        f"\n{report['completed']}/{report['total_units']} units in "
        f"{report['total_shards']} shards, peak RSS {report['peak_mib']:.1f} MiB "
        f"(budget {RSS_BUDGET_MIB} MiB)"
    )
    assert report["failures"] == 0
    assert report["completed"] == report["total_units"] == units
    assert report["peak_mib"] < RSS_BUDGET_MIB, (
        f"streaming campaign peaked at {report['peak_mib']:.1f} MiB, over the "
        f"{RSS_BUDGET_MIB} MiB budget - resident state is no longer O(shard)"
    )


def test_sharded_bit_identical_to_unsharded_1k(tmp_path):
    """Sharded and unsharded execution agree bit-for-bit on a 1k-unit plan."""
    spec = wide_spec("equiv-1k", 1000)
    unsharded = run_campaign(spec, tmp_path / "unsharded")
    sharded = stream_campaign(spec, tmp_path / "sharded", shard_size=128)
    assert unsharded.simulated == sharded.simulated == 1000
    assert sharded.frame().equals(unsharded.frame)
    assert sharded.aggregate.equals(reduce_frame(unsharded.frame))


# --------------------------------------------------------------------------- #
# Timed benchmarks (gated by the CI baseline)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="shard")
def test_bench_shard_stream_cold(benchmark, tmp_path):
    """Cold streaming execution: 512 units simulated in 4 shard flushes."""
    spec = wide_spec("bench-cold", 512)
    counter = {"i": 0}

    def cold():
        counter["i"] += 1
        return stream_campaign(
            spec, tmp_path / f"store-{counter['i']}", shard_size=128
        )

    result = benchmark(cold)
    assert result.simulated == 512 and result.is_complete
    assert result.total_shards == 4


@pytest.mark.benchmark(group="shard")
def test_bench_shard_stream_warm(benchmark, tmp_path):
    """Warm replay of a completed sharded store: pure artifact reloads."""
    spec = wide_spec("bench-warm", 512)
    store = tmp_path / "store"
    cold = stream_campaign(spec, store, shard_size=128)
    assert cold.simulated == 512

    result = benchmark(stream_campaign, spec, store, shard_size=128)
    assert result.simulated == 0 and result.is_complete
    assert all(shard.reloaded for shard in result.shards)
    assert result.aggregate.equals(cold.aggregate)
