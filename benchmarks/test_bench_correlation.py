"""Section IV correlation exploration (experiment E8).

Paper reference: for runs with hardware available since 2021 the correlation
exploration is confounded by vendor lineups — AMD's mean core count (85.8) is
far above Intel's (39.5), the nominal frequency means coincide (~2.3 GHz) but
the spreads differ (0.3 vs 0.5 GHz) — and remains inconclusive.
"""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core import run_correlation_study


@pytest.mark.benchmark(group="correlation")
def test_bench_correlation_study(benchmark, paper_filtered):
    study = benchmark(run_correlation_study, paper_filtered, 2021)
    amd_cores = study.vendor_summary("cores_total", "AMD")
    intel_cores = study.vendor_summary("cores_total", "Intel")
    amd_freq = study.vendor_summary("cpu_frequency_mhz", "AMD")
    intel_freq = study.vendor_summary("cpu_frequency_mhz", "Intel")
    print_rows(
        "Correlation study vendor statistics (runs since 2021)",
        [
            {"feature": "cores_total", "amd_mean": round(amd_cores.mean, 1),
             "intel_mean": round(intel_cores.mean, 1), "paper": "85.8 vs 39.5"},
            {"feature": "frequency_ghz", "amd_mean": round(amd_freq.mean / 1000, 2),
             "intel_mean": round(intel_freq.mean / 1000, 2), "paper": "~2.3 vs ~2.3"},
            {"feature": "frequency_std_ghz", "amd": round(amd_freq.std / 1000, 2),
             "intel": round(intel_freq.std / 1000, 2), "paper": "0.3 vs 0.5"},
        ],
    )
    print_rows(
        "Correlations with the idle fraction",
        [{"feature": name, "r": round(value, 2)}
         for name, value in study.idle_fraction_correlations().items()],
    )
    # Shape: AMD clearly has more cores, and no hardware feature explains the
    # idle fraction on its own (the paper's "remains inconclusive").
    assert amd_cores.mean > 1.5 * intel_cores.mean
    assert not study.is_conclusive()
