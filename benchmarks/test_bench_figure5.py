"""Figure 5: idle power relative to full-load power (experiment E5).

Paper reference: yearly mean idle fraction 70.1 % in 2006, minimum 15.7 % in
2017, back up to 25.7 % in 2024; Intel trends upward after 2017 while AMD is
flat to slightly falling.
"""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core import figure5
from repro.core.trends import idle_fraction_milestones
from repro.stats import bin_by_year


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5(benchmark, paper_filtered):
    artifact = benchmark(figure5, paper_filtered)
    yearly = bin_by_year(artifact.data, "idle_fraction")
    print_rows("Figure 5 yearly mean idle fraction",
               [{"year": r["hw_avail_year"], "mean": round(r["mean"], 3), "n": r["count"]}
                for r in yearly.to_records()])
    assert len(artifact.data) > 100


@pytest.mark.benchmark(group="figure5")
def test_bench_idle_fraction_milestones(benchmark, paper_filtered):
    findings = benchmark(idle_fraction_milestones, paper_filtered)
    print_rows(
        "Idle fraction milestones (paper: 0.701 in 2006, 0.157 minimum in 2017, 0.257 in 2024)",
        [{"finding": f.name, "paper": f.paper_value, "measured": f.measured_value}
         for f in findings],
    )
    by_name = {f.name: f.measured_value for f in findings}
    assert by_name["idle_fraction_2006"] > 0.45
    assert by_name["idle_fraction_minimum"] < 0.25
    assert by_name["idle_fraction_2024"] > by_name["idle_fraction_minimum"]
    assert 2014 <= by_name["idle_fraction_minimum_year"] <= 2020


@pytest.mark.benchmark(group="figure5")
def test_bench_idle_vendor_divergence(benchmark, paper_filtered):
    def vendor_trends():
        yearly = bin_by_year(paper_filtered, "idle_fraction", group_columns=["cpu_vendor"])
        records = [r for r in yearly.to_records() if r["hw_avail_year"] >= 2018]
        intel = [r["mean"] for r in records if r["cpu_vendor"] == "Intel"]
        amd = [r["mean"] for r in records if r["cpu_vendor"] == "AMD"]
        return intel, amd

    intel, amd = benchmark(vendor_trends)
    print_rows("Post-2018 idle fraction by vendor",
               [{"vendor": "Intel", "first": round(intel[0], 3), "last": round(intel[-1], 3)},
                {"vendor": "AMD", "first": round(amd[0], 3), "last": round(amd[-1], 3)}])
    # Intel regresses more strongly than AMD in recent years (paper Fig. 5).
    assert intel[-1] > amd[-1]
