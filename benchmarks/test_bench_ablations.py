"""Ablation benchmarks (experiments A1-A3 of DESIGN.md).

The design decisions called out in DESIGN.md §6 are toggled on the server
model and their effect on the paper's metrics is measured:

* A1 — the turbo power premium at full load drives the partial-load relative
  efficiency above 1 (the Figure 4 mid-2010s Intel behaviour),
* A2 — package C-states are what separate the measured active idle from the
  extrapolated idle (the Figure 6 quotient),
* A3 — per-logical-CPU background activity erodes the idle optimisation as
  core counts grow (the post-2017 idle-fraction regression of Figure 5).
"""

from __future__ import annotations


import pytest

from conftest import print_rows
from repro.market import default_catalog
from repro.powermodel import (
    PackageCStateModel,
    ServerConfiguration,
    ServerPowerModel,
    TurboModel,
)


def _configuration(model_name: str) -> ServerConfiguration:
    entry = default_catalog().get(model_name)
    return ServerConfiguration(
        cpu=entry.cpu,
        sockets=2,
        memory_gb=entry.typical_memory_gb_per_socket * 2,
        psu_rating_w=1100.0,
    )


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_turbo(benchmark):
    """A1: relative efficiency at 70 % with and without the turbo premium."""
    configuration = _configuration("Xeon E5-2699 v3")  # 2014 Haswell era

    def run():
        with_turbo = ServerPowerModel(configuration)
        without_turbo = ServerPowerModel(configuration, turbo=TurboModel(enabled=False))
        def relative_efficiency(model):
            return 0.7 * model.node_power_w(1.0) / model.node_power_w(0.7)
        return relative_efficiency(with_turbo), relative_efficiency(without_turbo)

    with_turbo, without_turbo = benchmark(run)
    print_rows("A1 turbo ablation: relative efficiency at 70 % load",
               [{"with_turbo": round(with_turbo, 3),
                 "without_turbo": round(without_turbo, 3)}])
    # The turbo premium is what pushes partial-load relative efficiency above 1.
    assert with_turbo > without_turbo


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_package_cstates(benchmark):
    """A2: idle fraction with and without package-level idle optimisation."""
    configuration = _configuration("Xeon Platinum 8180")  # 2017 minimum era

    def run():
        optimised = ServerPowerModel(configuration)
        disabled = ServerPowerModel(
            configuration,
            package_cstates=PackageCStateModel(base_quotient=1.0, quotient_sigma=0.0),
        )
        full = optimised.node_power_w(1.0)
        return (optimised.active_idle_power_w() / full,
                disabled.active_idle_power_w() / full)

    with_pkg, without_pkg = benchmark(run)
    print_rows("A2 package C-state ablation: idle fraction",
               [{"with_package_cstates": round(with_pkg, 3),
                 "without": round(without_pkg, 3)}])
    assert with_pkg < without_pkg
    assert without_pkg > 0.2  # without deep idle the 2017 minimum disappears


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_background_noise(benchmark):
    """A3: idle quotient erosion with growing logical CPU counts."""
    entry = default_catalog().get("Xeon Platinum 8490H")

    def run():
        noisy = PackageCStateModel(
            base_quotient=entry.cpu.profile.idle_quotient_mean,
            quotient_sigma=0.0,
            noise_per_logical_cpu=entry.cpu.profile.idle_noise_per_logical_cpu,
        )
        quiet = PackageCStateModel(
            base_quotient=entry.cpu.profile.idle_quotient_mean,
            quotient_sigma=0.0,
            noise_per_logical_cpu=0.0,
        )
        logical_cpus = entry.cpu.threads * 2
        return noisy.effective_quotient(logical_cpus), quiet.effective_quotient(logical_cpus)

    noisy_quotient, quiet_quotient = benchmark(run)
    print_rows("A3 background-noise ablation: extrapolated idle quotient",
               [{"with_per_cpu_noise": round(noisy_quotient, 2),
                 "without": round(quiet_quotient, 2),
                 "logical_cpus": default_catalog().get("Xeon Platinum 8490H").cpu.threads * 2}])
    # Background tasks replicated per logical CPU erode the achievable quotient.
    assert noisy_quotient < quiet_quotient
    assert quiet_quotient > 1.5
