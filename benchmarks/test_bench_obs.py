"""Observability overhead gates: tracing must be free when off, cheap when on.

The telemetry plane's contract has two halves:

* **disabled is (near) free** — instrumentation points call the disabled
  tracer, which returns a shared no-op span.  The gate below bounds the
  *entire* disabled-path cost analytically: (number of instrumentation
  calls a 512-unit stream makes) x (measured per-call no-op cost) must stay
  under 5% of the stream's own wall time.  Counting calls instead of
  diffing two noisy end-to-end timings keeps the gate deterministic — the
  call count is a property of the code, not of the machine's scheduler.

* **enabled does not change results** — event emission and span timing are
  bit-effect-free on the data plane: a traced stream produces the same
  aggregate as an untraced one.

The timed benchmarks feed the committed baseline so a future change that
makes instrumentation per-unit (instead of per-shard) shows up as a
regression in ``check_bench_regression.py``.
"""

from __future__ import annotations

import time
import timeit

import pytest

from repro.campaign import stream_campaign
from repro.campaign.spec import CampaignSpec
from repro.obs.trace import Tracer, configure_tracing, get_tracer
from repro.obs.watch import render_watch_frame

#: Disabled instrumentation may cost at most this fraction of stream wall.
OVERHEAD_BUDGET = 0.05

#: Cheapest valid unit, same shape as test_bench_shard's streams.
FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def wide_spec(name: str, units: int) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={
            "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
            "seed": list(range(units // 2)),
        },
        base=FAST_BASE,
    )


class _CountingTracer(Tracer):
    """Disabled tracer that counts how often the hot paths consult it."""

    def __init__(self):
        super().__init__(enabled=False)
        self.calls = 0

    def span(self, name, /, **attrs):
        self.calls += 1
        return super().span(name, **attrs)

    def event(self, name, /, **fields):
        self.calls += 1
        super().event(name, **fields)


def test_disabled_instrumentation_overhead_under_5pct(tmp_path, monkeypatch):
    """count(instrumentation calls) x cost(no-op call) < 5% of stream wall."""
    counting = _CountingTracer()
    import repro.obs.trace as trace_module

    monkeypatch.setattr(trace_module, "_global_tracer", counting)

    spec = wide_spec("obs-overhead", 512)
    start = time.perf_counter()
    result = stream_campaign(spec, tmp_path / "store", shard_size=128)
    wall = time.perf_counter() - start
    assert result.simulated == 512 and result.is_complete

    calls = counting.calls
    # Instrumentation is per shard / dispatch / chunk, never per unit: a
    # 512-unit, 4-shard stream must consult the tracer O(tens) of times.
    assert calls > 0
    assert calls < 40 * result.total_shards + 40, (
        f"{calls} tracer consultations for {result.total_shards} shards - "
        "did an instrumentation point move into a per-unit loop?"
    )

    probe = Tracer(enabled=False)
    per_call = min(
        timeit.repeat(lambda: probe.span("probe", units=1), number=10_000, repeat=3)
    ) / 10_000
    overhead = calls * per_call
    assert overhead < OVERHEAD_BUDGET * wall, (
        f"disabled instrumentation costs {overhead:.6f}s "
        f"({calls} calls x {per_call * 1e9:.0f}ns) against a {wall:.3f}s "
        f"stream - over the {OVERHEAD_BUDGET:.0%} budget"
    )


def test_traced_stream_bit_identical_to_untraced(tmp_path):
    """Turning tracing on must not move a single bit of the aggregate."""
    spec = wide_spec("obs-identity", 256)
    plain = stream_campaign(spec, tmp_path / "plain", shard_size=64)
    configure_tracing(enabled=True, path=tmp_path / "events.jsonl")
    try:
        traced = stream_campaign(spec, tmp_path / "traced", shard_size=64)
    finally:
        configure_tracing(enabled=False)
    assert traced.simulated == plain.simulated == 256
    assert traced.aggregate.equals(plain.aggregate)
    assert traced.frame().equals(plain.frame())
    assert (tmp_path / "events.jsonl").exists()


# --------------------------------------------------------------------------- #
# Timed benchmarks (gated by the CI baseline)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="obs")
def test_bench_obs_stream_traced(benchmark, tmp_path):
    """Cold 512-unit stream with span tracing and a JSONL sink attached."""
    spec = wide_spec("bench-traced", 512)
    counter = {"i": 0}
    configure_tracing(enabled=True, path=tmp_path / "events.jsonl")

    def traced():
        counter["i"] += 1
        return stream_campaign(
            spec, tmp_path / f"store-{counter['i']}", shard_size=128
        )

    try:
        result = benchmark(traced)
    finally:
        configure_tracing(enabled=False)
        for sink in list(get_tracer().sinks):
            get_tracer().remove_sink(sink)
    assert result.simulated == 512 and result.is_complete


@pytest.mark.benchmark(group="obs")
def test_bench_obs_watch_render(benchmark, tmp_path):
    """One watch frame over a completed 512-unit store."""
    spec = wide_spec("bench-watch", 512)
    store = tmp_path / "store"
    stream_campaign(spec, store, shard_size=128)

    frame = benchmark(render_watch_frame, store)
    assert "shards: 4/4 complete" in frame
