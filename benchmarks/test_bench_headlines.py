"""All headline scalar findings of the paper in one paper-vs-measured table."""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core import headline_findings


@pytest.mark.benchmark(group="headlines")
def test_bench_headline_findings(benchmark, paper_runs, paper_filtered):
    findings = benchmark(headline_findings, paper_runs, paper_filtered)
    print_rows(
        "Headline findings (paper vs measured)",
        [
            {"finding": f.name, "paper": f.paper_value, "measured": f.measured_value}
            for f in findings
        ],
    )
    by_name = {f.name: f for f in findings}
    # Directional shape checks covering the quoted statements of the paper.
    assert by_name["power_growth_power_per_socket_100"].measured_value > 1.5
    assert by_name["linux_share_from_2018"].measured_value > by_name[
        "linux_share_before_2018"
    ].measured_value
    assert by_name["amd_share_from_2018"].measured_value > by_name[
        "amd_share_before_2018"
    ].measured_value
    assert by_name["amd_share_of_top100_efficiency"].measured_value > 0.8
