"""Table I: SPEC Power vs SPEC CPU for two dual-socket Lenovo systems
(experiment E7).

Paper reference factors (AMD EPYC 9754 vs Intel Xeon Platinum 8490H):
power_ssj2008 2.09x, SPEC CPU 2017 fp rate 1.53x, int rate 2.03x.
"""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core.tables import PAPER_TABLE1, table1


@pytest.mark.benchmark(group="table1")
def test_bench_table1(benchmark):
    rows = benchmark(table1)
    print_rows(
        "Table I (measured vs paper)",
        [
            {
                "benchmark": row.benchmark,
                "system": row.system,
                "result": row.result,
                "factor": row.factor,
                "paper_result": row.paper_result,
                "paper_factor": row.paper_factor,
            }
            for row in rows
        ],
    )
    amd = {row.benchmark: row.factor for row in rows if row.factor != 1.0}
    # Shape: AMD wins everywhere; the integer-heavy SPEC Power and int rate
    # advantages are larger than the fp rate advantage.
    assert set(amd) == set(PAPER_TABLE1)
    assert all(factor > 1.3 for factor in amd.values())
    assert amd["cpu2017_fp_rate"] < amd["cpu2017_int_rate"]
    assert amd["cpu2017_fp_rate"] < amd["power_ssj2008"]
    # Factors land in the paper's ballpark.
    assert amd["cpu2017_int_rate"] == pytest.approx(2.03, abs=0.35)
    assert amd["cpu2017_fp_rate"] == pytest.approx(1.53, abs=0.30)
    assert amd["power_ssj2008"] == pytest.approx(2.09, rel=0.40)
