"""Session workspace benchmarks: cold pipeline vs warm content-hash reloads.

The session's headline number is the warm dataset reload: a second
``session.dataset()`` (or a second ``spectrends analyze --workspace``) over
an unchanged corpus performs zero generation, zero parsing and zero
simulation — it rebuilds the derived frame from the binary ``.npz``
columnar sidecar persisted in the workspace store (typed arrays + validity
masks; no JSON row decoding, no type inference).
``test_bench_session_warm_dataset`` is wired into the CI regression gate
(``benchmarks/baseline.json``); the cold benchmark and the key-derivation
micro-benchmark give the ratio context.
"""

from __future__ import annotations

import pytest

from repro.session import Session

#: Small corpus: the benchmark measures cache mechanics, not the simulator.
RUNS = 60
SEED = 2024


@pytest.fixture(scope="module")
def warm_workspace(tmp_path_factory):
    """A workspace whose default dataset artifact is already materialised."""
    workspace = tmp_path_factory.mktemp("bench-session-ws")
    with Session(workspace=workspace) as session:
        frame = session.dataset(runs=RUNS, seed=SEED).result()
        assert len(frame) == RUNS
    return workspace


@pytest.mark.benchmark(group="session")
def test_bench_session_cold_dataset(benchmark, tmp_path):
    """Derive a dataset into a fresh workspace (the cold baseline).

    Cold now means the parse-bypass funnel: simulate the fleet through the
    batch kernel and derive records directly — no report text is rendered,
    written or regex-parsed.
    """
    counter = {"i": 0}

    def cold():
        counter["i"] += 1
        with Session(workspace=tmp_path / f"ws-{counter['i']}") as session:
            return session.dataset(runs=RUNS, seed=SEED).result()

    frame = benchmark(cold)
    assert len(frame) == RUNS


@pytest.mark.benchmark(group="session")
def test_bench_session_warm_dataset(benchmark, warm_workspace):
    """Reload the derived frame from the warm store (no parse, no simulate).

    A fresh :class:`Session` per round keeps the in-process memo out of the
    measurement: the number is the on-disk warm path a new CLI invocation
    takes, i.e. ``.npz`` sidecar -> typed columns -> frame.
    """

    def warm():
        with Session(workspace=warm_workspace) as session:
            return session.dataset(runs=RUNS, seed=SEED).result()

    frame = benchmark(warm)
    assert len(frame) == RUNS
    assert "overall_efficiency" in frame


@pytest.mark.benchmark(group="session")
def test_bench_session_handle_keys(benchmark, warm_workspace):
    """Content-key derivation for the whole stage chain (pure hashing)."""
    with Session(workspace=warm_workspace) as session:

        def keys():
            corpus = session.corpus(runs=RUNS, seed=SEED)
            dataset = session.dataset(corpus=corpus)
            analysis = session.analysis(dataset, table1=False)
            return corpus.key, dataset.key, analysis.key

        first = benchmark(keys)
        assert keys() == first  # deterministic
        assert len(set(first)) == 3
