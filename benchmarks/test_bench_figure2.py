"""Figure 2: full-load power per socket over time (experiment E2).

Paper reference values: mean power per socket 119.0 W for runs up to 2010 vs
303.3 W for runs since 2022 (~2.5x); growth ~1.8x at 20 % load and ~2.2x at
70 % load.
"""

from __future__ import annotations

import pytest

from conftest import print_rows
from repro.core import figure2
from repro.stats import bin_by_year, compare_eras


@pytest.mark.benchmark(group="figure2")
def test_bench_figure2(benchmark, paper_filtered):
    artifact = benchmark(figure2, paper_filtered)
    yearly = bin_by_year(artifact.data, "power_per_socket_100")
    print_rows("Figure 2 yearly mean power per socket (W)",
               [{"year": r["hw_avail_year"], "mean_w": round(r["mean"], 1),
                 "n": r["count"]} for r in yearly.to_records()])
    assert len(artifact.data) > 100


@pytest.mark.benchmark(group="figure2")
def test_bench_power_era_growth(benchmark, paper_filtered):
    def eras():
        return {
            level: compare_eras(paper_filtered, f"power_per_socket_{level:03d}",
                                early=(None, 2010), late=(2022, None))
            for level in (100, 70, 20)
        }

    result = benchmark(eras)
    print_rows(
        "Power growth, runs since 2022 vs runs up to 2010",
        [
            {"load": "100%", "early_W": round(result[100].early.mean, 1),
             "late_W": round(result[100].late.mean, 1),
             "ratio": round(result[100].ratio, 2), "paper_ratio": 2.5},
            {"load": "70%", "ratio": round(result[70].ratio, 2), "paper_ratio": 2.2},
            {"load": "20%", "ratio": round(result[20].ratio, 2), "paper_ratio": 1.8},
        ],
    )
    # Shape checks: power grew at every level, most strongly at full load.
    assert result[100].ratio > 1.5
    assert result[100].ratio > result[20].ratio
