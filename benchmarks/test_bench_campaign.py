"""Campaign engine benchmarks: cold execution vs warm (fully cached) replay.

The cache win is the headline number of the campaign subsystem: a warm
invocation of the same spec over the same store performs zero simulations and
reduces the campaign to key hashing plus JSON row loads — typically two
orders of magnitude faster than the cold run it replays.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign

#: 4 generations x 4 seeds with a shortened load ladder: big enough that the
#: cold/warm ratio is meaningful, small enough for the benchmark session.
BENCH_SPEC = {
    "name": "bench",
    "sweep": {
        "cpu_model": ["Xeon X5670", "Xeon E5-2699 v4",
                      "Xeon Platinum 8480+", "EPYC 9654"],
        "seed": [1, 2, 3, 4],
    },
    "base": {"load_levels": [1.0, 0.7, 0.5, 0.2, 0.1, 0.0]},
}


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_cold(benchmark, tmp_path):
    """Full expansion + simulation of all 16 units into a fresh store."""
    spec = CampaignSpec.from_dict(BENCH_SPEC)
    counter = {"i": 0}

    def cold():
        counter["i"] += 1
        return run_campaign(spec, tmp_path / f"store-{counter['i']}")

    result = benchmark(cold)
    assert result.simulated == 16 and result.cache_hits == 0
    assert len(result.frame) == 16


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_warm(benchmark, tmp_path):
    """Replay of the same spec over a completed store: all cache hits."""
    spec = CampaignSpec.from_dict(BENCH_SPEC)
    store = tmp_path / "store"
    cold = run_campaign(spec, store)
    assert cold.simulated == 16

    result = benchmark(run_campaign, spec, store)
    assert result.simulated == 0 and result.cache_hits == 16
    assert result.frame.equals(cold.frame)
    usage = result.frame.memory_usage()
    total_kb = result.frame.nbytes / 1024
    print(f"\ncampaign frame: {result.frame.shape[0]} rows x "
          f"{result.frame.shape[1]} columns, {total_kb:.1f} KiB "
          f"(heaviest column: {usage.row(0)['column']})")


@pytest.mark.benchmark(group="campaign")
def test_bench_campaign_status(benchmark, tmp_path):
    """Ledger + cache scan behind ``spectrends campaign status``."""
    spec = CampaignSpec.from_dict(BENCH_SPEC)
    store_dir = tmp_path / "store"
    run_campaign(spec, store_dir)

    status = benchmark(lambda: CampaignStore(store_dir).status())
    assert status.is_complete and status.total == 16
