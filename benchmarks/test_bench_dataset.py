"""Benchmarks of the dataset substrate itself: corpus generation and parsing.

These are not tied to a single figure but measure the two stages every other
experiment depends on (Section II of the paper: download + parse + check).
"""

from __future__ import annotations

import pytest

from repro.api import generate_corpus
from repro.parallel import ParallelConfig
from repro.parser import parse_directory


@pytest.mark.benchmark(group="dataset")
def test_bench_corpus_generation(benchmark, tmp_path):
    """Simulate and write a 120-run corpus (scaled-down generation stage)."""

    counter = {"i": 0}

    def generate():
        counter["i"] += 1
        out = tmp_path / f"gen-{counter['i']}"
        return generate_corpus(out, total_parsed_runs=120, seed=7)

    report = benchmark(generate)
    assert report.total_files > 120


@pytest.mark.benchmark(group="dataset")
def test_bench_corpus_parsing(benchmark, paper_corpus_dir):
    """Parse + validate the full paper-scale corpus (serial path)."""
    report = benchmark(parse_directory, paper_corpus_dir)
    assert report.parsed_count > 0
    print(f"\nparsed {report.parsed_count} of {report.total_files} files; "
          f"rejections: {report.rejection_counts()}")


@pytest.mark.benchmark(group="dataset")
def test_bench_corpus_parsing_parallel(benchmark, paper_corpus_dir):
    """Parse + validate the full corpus on a process pool."""
    config = ParallelConfig(backend="process", chunk_size=64)
    report = benchmark(parse_directory, paper_corpus_dir, config)
    assert report.parsed_count > 0
