"""Frame-kernel benchmarks: vectorized groupby/join + binary dataset reload.

The columnar fast path's headline numbers at campaign scale (~10k rows):

* ``groupby(...).agg`` through the factorized vector kernel vs the scalar
  tuple-key reference engine (the ≥5x floor is asserted on dedicated
  ``--benchmark-only`` runs, like the batch-kernel floor),
* a hash join on integer key codes vs the per-row dict index,
* reloading a persisted dataset frame from the ``.npz`` columnar sidecar —
  the warm path every ``spectrends analyze --workspace`` invocation takes.

All three are wired into the CI regression gate via
``benchmarks/baseline.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.frame import Frame, join
from repro.session import ArtifactStore, digest_json
from repro.session.columnar import frame_from_arrays, frame_to_arrays

N_ROWS = 10_000
MIN_GROUPBY_SPEEDUP = 5.0

AGG_SPEC = {
    "mean_x": ("x", "mean"), "total_x": ("x", "sum"), "hi_x": ("x", "max"),
    "sd_x": ("x", "std"), "n": ("x", "count"), "rows": ("x", "size"),
}


@pytest.fixture(scope="module")
def wide_frame() -> Frame:
    """A dataset-shaped frame: string + int keys, many float measure columns.

    Real run frames are wide (~90 columns after derivation); 16 measure
    columns keep the benchmark honest about what per-group sub-frame
    materialisation costs the reference engine on such frames.
    """
    rng = np.random.default_rng(7)
    vendors = np.array(["Intel", "AMD", "Ampere", "IBM", "Oracle", "Cavium"])
    x = rng.normal(100.0, 15.0, N_ROWS)
    x[rng.random(N_ROWS) < 0.05] = np.nan
    data = {
        "vendor": vendors[rng.integers(0, len(vendors), N_ROWS)].tolist(),
        "year": rng.integers(2006, 2025, N_ROWS),
        "sockets": rng.integers(1, 5, N_ROWS),
        "x": x,
        "y": rng.normal(0.0, 1.0, N_ROWS),
    }
    for i in range(14):
        data[f"m{i:02d}"] = rng.normal(50.0, 8.0, N_ROWS)
    return Frame.from_dict(data)


@pytest.fixture(scope="module")
def join_frames(wide_frame) -> tuple[Frame, Frame]:
    rng = np.random.default_rng(11)
    right = Frame.from_dict(
        {
            "vendor": ["Intel", "AMD", "Ampere", "IBM", "Oracle", "Cavium"],
            "launch_year": rng.integers(1990, 2005, 6),
        }
    )
    return wide_frame, right


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _groupby(frame: Frame, engine: str) -> Frame:
    return frame.groupby(["vendor", "year"], engine=engine).agg(AGG_SPEC)


@pytest.mark.benchmark(group="frame")
def test_bench_frame_groupby(benchmark, wide_frame, request):
    """Vectorized two-key groupby + 6 aggregations over 10k rows."""
    vector_result = benchmark(_groupby, wide_frame, "vector")
    assert len(vector_result) == wide_frame.groupby(["vendor", "year"]).ngroups

    python_seconds = min(_timed(_groupby, wide_frame, "python") for _ in range(3))
    vector_seconds = min(_timed(_groupby, wide_frame, "vector") for _ in range(3))
    speedup = python_seconds / vector_seconds
    print(f"\ngroupby kernel: python {python_seconds * 1000:.1f} ms vs "
          f"vector {vector_seconds * 1000:.1f} ms -> {speedup:.1f}x")
    # Identical output is the contract the speedup rides on.
    assert vector_result.equals(_groupby(wide_frame, "python"))
    # Enforce the floor only on dedicated benchmark runs (see
    # test_bench_batch.py for the rationale).
    if request.config.getoption("--benchmark-only"):
        assert speedup >= MIN_GROUPBY_SPEEDUP
    elif speedup < MIN_GROUPBY_SPEEDUP:
        print(f"warning: speedup {speedup:.1f}x below the "
              f"{MIN_GROUPBY_SPEEDUP:.0f}x floor (not enforced here)")


@pytest.mark.benchmark(group="frame")
def test_bench_frame_join(benchmark, join_frames):
    """10k-row left frame joined against a small dimension table."""
    left, right = join_frames
    result = benchmark(join, left, right, "vendor", "left")
    assert len(result) == N_ROWS
    assert result.equals(join(left, right, on="vendor", how="left", engine="python"))


@pytest.mark.benchmark(group="frame")
def test_bench_frame_npz_reload(benchmark, wide_frame, tmp_path):
    """Reload a 10k-row dataset frame from its binary .npz sidecar."""
    store = ArtifactStore(tmp_path / "store")
    key = digest_json("bench-dataset")
    meta, arrays = frame_to_arrays(wide_frame)
    store.put(key, {"columns": meta}, arrays=arrays)

    def reload():
        payload = store.get(key)
        return frame_from_arrays(payload["columns"], store.get_arrays(key))

    frame = benchmark(reload)
    assert frame.equals(wide_frame)
