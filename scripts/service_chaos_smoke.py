#!/usr/bin/env python3
"""CI chaos gate for the campaign service layer.

Proves the lease-coordinated worker pool survives a hard crash with
correct results, end to end and across real process boundaries:

1. run a clean serial reference campaign (the ground truth aggregate),
2. initialise an empty sharded store for the same spec,
3. launch two ``spectrends campaign worker`` subprocesses against it,
4. SIGKILL one worker mid-run — no cleanup, no signal handler, the
   worker's lease is left dangling in ``shards.jsonl``,
5. wait for the survivor (must exit 0),
6. finalize with the resume/reclaimer pass, which re-queues the victim's
   leased shard and reloads everything else,
7. assert the recovered aggregate is bit-identical to the reference,
8. render ``campaign watch --once`` over the crashed-and-recovered store,
9. round-trip a tiny job through a live :class:`CampaignService` socket.

The kill lands wherever it lands — every assertion below holds whether
the victim died before its first claim, mid-shard, or after finishing.
Exit status 0 means the gate passed; any assertion failure raises.

Usage::

    PYTHONPATH=src python scripts/service_chaos_smoke.py --root /tmp/chaos
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import CampaignSpec, CampaignStore, resume_streaming, stream_campaign
from repro.service import CampaignService, ServiceClient

SPEC = CampaignSpec(
    name="ci-chaos",
    sweep={
        "cpu_model": ["EPYC 9654", "Xeon X5670", "Xeon Platinum 8480+"],
        "seed": [1, 2, 3, 4, 5, 6],
    },
    base={"load_levels": [1.0, 0.5, 0.0]},
)
SHARD_SIZE = 2  # 18 units -> 9 shards: plenty of claim/flush cycles to crash into


def cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli.main", *args]


def spawn_worker(store: Path, worker_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        cli("campaign", "worker", "--store", str(store), "--worker-id", worker_id),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, help="scratch directory for the gate")
    parser.add_argument(
        "--kill-after",
        type=float,
        default=0.4,
        help="seconds before the victim worker is SIGKILLed",
    )
    args = parser.parse_args()
    root = Path(args.root)

    print("== reference: clean serial streamed run")
    reference = stream_campaign(SPEC, root / "reference", shard_size=SHARD_SIZE)
    assert reference.is_complete, "reference run did not complete"

    print("== chaos store: initialise only (max_shards=0)")
    store_dir = root / "store"
    seeded = stream_campaign(SPEC, store_dir, shard_size=SHARD_SIZE, max_shards=0)
    assert seeded.completed == 0, "seed pass must not execute any shard"

    print("== spawn two workers, SIGKILL one mid-run")
    survivor = spawn_worker(store_dir, "survivor")
    victim = spawn_worker(store_dir, "victim")
    time.sleep(args.kill_after)
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL
    survivor_rc = survivor.wait(timeout=300)
    assert survivor_rc == 0, f"surviving worker failed: rc={survivor_rc}"
    print(f"   victim killed after {args.kill_after}s; survivor exited 0")

    print("== finalize: resume pass reclaims the victim's shard")
    recovered = resume_streaming(store_dir)
    assert recovered.is_complete, "reclaimer did not complete the campaign"
    assert not recovered.failures, f"failures after recovery: {recovered.failures}"
    assert recovered.aggregate.equals(reference.aggregate), (
        "recovered aggregate diverged from the clean serial reference"
    )
    assert recovered.frame().equals(reference.frame()), (
        "recovered frame diverged from the clean serial reference"
    )
    print(
        f"   bit-identical: {recovered.completed}/{recovered.total_units} units,"
        f" {recovered.simulated} re-simulated after the kill"
    )

    leases = CampaignStore(store_dir).lease_entries()
    assert leases, "workers left no lease records — pool coordination never engaged"
    print(f"   lease records on {sorted(leases)} in shards.jsonl")

    print("== campaign watch --once over the recovered store")
    subprocess.run(
        cli("campaign", "watch", "--store", str(store_dir), "--once"),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        check=True,
        timeout=60,
    )

    print("== service round-trip: submit the same spec over the socket")
    service = CampaignService(root / "service", shard_size=SHARD_SIZE)
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=300.0)
        job = client.submit(SPEC.to_dict(), workers=2)
        result = client.wait(job["job"])
        assert result["state"] == "complete", result
        assert result["aggregate"] == reference.aggregate.to_dict(), (
            "service aggregate diverged from the serial reference"
        )
        rerun = client.submit(SPEC.to_dict(), workers=2)
        assert rerun["deduped"] and rerun["job"] == job["job"]
        print(f"   job {job['job']}: complete, deduped on resubmit")
    finally:
        service.stop()

    print("chaos gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
