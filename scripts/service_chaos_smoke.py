#!/usr/bin/env python3
"""CI chaos gate for the campaign service layer.

Proves the lease-coordinated worker pool survives a hard crash with
correct results, end to end and across real process boundaries:

1. run a clean serial reference campaign (the ground truth aggregate),
2. initialise an empty sharded store for the same spec,
3. launch two ``spectrends campaign worker`` subprocesses against it,
4. SIGKILL one worker mid-run — no cleanup, no signal handler, the
   worker's lease is left dangling in ``shards.jsonl``,
5. wait for the survivor (must exit 0),
6. finalize with the resume/reclaimer pass, which re-queues the victim's
   leased shard and reloads everything else,
7. assert the recovered aggregate is bit-identical to the reference,
8. render ``campaign watch --once`` over the crashed-and-recovered store,
9. run the deterministic fault-injection matrix: transient unit raises,
   torn shard flushes, torn ledger appends, a poison unit driven into
   quarantine, and an env-armed (``REPRO_FAULTS``) worker killed at a
   flush — each must recover bit-identical to the reference and leave a
   store that ``campaign doctor`` signs off on,
10. round-trip a tiny job through a live :class:`CampaignService` socket.

The kill lands wherever it lands — every assertion below holds whether
the victim died before its first claim, mid-shard, or after finishing.
Exit status 0 means the gate passed; any assertion failure raises.

Usage::

    PYTHONPATH=src python scripts/service_chaos_smoke.py --root /tmp/chaos
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    doctor_store,
    resume_streaming,
    stream_campaign,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.service import CampaignService, ServiceClient
from repro.session.policy import ExecutionPolicy

SPEC = CampaignSpec(
    name="ci-chaos",
    sweep={
        "cpu_model": ["EPYC 9654", "Xeon X5670", "Xeon Platinum 8480+"],
        "seed": [1, 2, 3, 4, 5, 6],
    },
    base={"load_levels": [1.0, 0.5, 0.0]},
)
#: Defaults; both are CLI-overridable (--shard-size / --retries) so the
#: nightly matrix can sweep layouts and retry budgets.
SHARD_SIZE = 2  # 18 units -> 9 shards: plenty of claim/flush cycles to crash into

#: Fast retry schedule for injected transients: keep CI wall time honest.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_cap=0.002)

#: site x kind matrix — every case must recover bit-identical to the
#: reference after retry + resume, and ``doctor`` must sign the store off.
FAULT_MATRIX = [
    (
        "transient-unit-raise",
        [{"site": "unit.execute", "kind": "raise", "probability": 0.25, "times": 4}],
    ),
    (
        "torn-shard-flush",
        [{"site": "shard.flush", "kind": "partial_write", "nth": 2, "fraction": 0.5}],
    ),
    (
        "torn-ledger-append",
        [{"site": "jsonl.append", "kind": "partial_write", "nth": 3, "where": "ledger"}],
    ),
]


def cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli.main", *args]


def spawn_worker(
    store: Path, worker_id: str, faults: dict | None = None
) -> subprocess.Popen:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps(faults)
    return subprocess.Popen(
        cli("campaign", "worker", "--store", str(store), "--worker-id", worker_id),
        env=env,
    )


def assert_doctor_signs_off(store_dir: Path) -> None:
    report = doctor_store(store_dir, repair=True)
    assert not report.unresolved, f"doctor left unresolved issues:\n{report.describe()}"
    assert doctor_store(store_dir).healthy, "store unhealthy after doctor --repair"


def run_fault_matrix(root: Path, reference) -> None:
    for case_no, (label, rules) in enumerate(FAULT_MATRIX, start=1):
        store_dir = root / "faults" / label
        plan = FaultPlan.from_dict({"seed": case_no, "rules": rules})
        stream_campaign(
            SPEC,
            store_dir,
            shard_size=SHARD_SIZE,
            policy=ExecutionPolicy(faults=plan, retry=FAST_RETRY),
            retry=FAST_RETRY,
        )
        store = CampaignStore(store_dir)
        if store.quarantine_keys():
            # A unit may legitimately exhaust a *swept-down* retry budget
            # while the injected fault still has charges left; lifting the
            # quarantine must then heal to bit-identical.  At the default
            # budget (>= 3) the transients always recover within retries,
            # so any quarantine there is a regression.
            assert FAST_RETRY.max_attempts < 3, f"{label}: spurious quarantine"
            store.quarantine_path.rename(
                store.quarantine_path.with_suffix(".jsonl.lifted")
            )
            print(f"   {label}: retry budget exhausted, quarantine lifted")
        healed = resume_streaming(store_dir, retry=FAST_RETRY)
        assert healed.is_complete, f"{label}: resume did not complete"
        assert not healed.failures, f"{label}: failures survived: {healed.failures}"
        assert not healed.quarantined, f"{label}: spurious quarantine"
        assert healed.frame().equals(reference.frame()), (
            f"{label}: recovered frame diverged from the clean reference"
        )
        assert_doctor_signs_off(store_dir)
        print(f"   {label}: recovered bit-identical, doctor signed off")

    # Poison unit: deterministic failure on one unit key, every attempt.
    # Retry must exhaust, the unit must land in quarantine.jsonl, the rest
    # of the campaign must still finish (degraded) — and lifting the
    # quarantine must heal the store to bit-identical completeness.
    poison_key = SPEC.expand()[7].key
    store_dir = root / "faults" / "poison-unit"
    plan = FaultPlan.from_dict(
        {
            "seed": 99,
            "rules": [
                {
                    "site": "unit.execute",
                    "kind": "raise",
                    "probability": 1.0,
                    "where": poison_key,
                }
            ],
        }
    )
    degraded = stream_campaign(
        SPEC,
        store_dir,
        shard_size=SHARD_SIZE,
        policy=ExecutionPolicy(faults=plan, retry=FAST_RETRY),
        retry=FAST_RETRY,
    )
    assert degraded.status == "degraded", degraded.status
    assert len(degraded.quarantined) == 1
    assert "injected fault" in degraded.quarantined[0][1]
    store = CampaignStore(store_dir)
    assert store.quarantine_keys() == {poison_key}
    assert_doctor_signs_off(store_dir)
    # Operator lifts the quarantine; keep the ledger aside for CI forensics.
    store.quarantine_path.rename(store.quarantine_path.with_suffix(".jsonl.lifted"))
    healed = resume_streaming(store_dir, retry=FAST_RETRY)
    assert healed.is_complete and not healed.quarantined
    assert healed.frame().equals(reference.frame()), (
        "poison-unit: healed frame diverged from the clean reference"
    )
    print(
        "   poison-unit: quarantined after "
        f"{FAST_RETRY.max_attempts} attempts, healed after lift"
    )

    # Env-armed kill: REPRO_FAULTS crosses the process boundary and SIGKILLs
    # a real worker mid-flush; the resume pass must finish the campaign.
    store_dir = root / "faults" / "env-kill-flush"
    stream_campaign(SPEC, store_dir, shard_size=SHARD_SIZE, max_shards=0)
    victim = spawn_worker(
        store_dir,
        "env-victim",
        faults={"seed": 7, "rules": [{"site": "shard.flush", "kind": "kill", "nth": 3}]},
    )
    victim.wait(timeout=300)
    assert victim.returncode == -signal.SIGKILL, victim.returncode
    healed = resume_streaming(store_dir, retry=FAST_RETRY)
    assert healed.is_complete and not healed.failures
    assert healed.frame().equals(reference.frame()), (
        "env-kill-flush: recovered frame diverged from the clean reference"
    )
    assert_doctor_signs_off(store_dir)
    print("   env-kill-flush: REPRO_FAULTS killed the worker, resume recovered")

    # Doctor CLI exit codes on real ledger corruption: 1 (found), 0 (fixed).
    ledger = CampaignStore(store_dir).ledger_path
    lines = ledger.read_text(encoding="utf-8").splitlines(keepends=True)
    lines.insert(1, "garbage, not json\n")
    ledger.write_text("".join(lines), encoding="utf-8")
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    doctor = cli("campaign", "doctor", "--store", str(store_dir))
    assert subprocess.run(doctor, env=env, timeout=60).returncode == 1
    assert subprocess.run([*doctor, "--repair"], env=env, timeout=60).returncode == 0
    assert subprocess.run(doctor, env=env, timeout=60).returncode == 0
    print("   campaign doctor CLI: corrupt ledger -> 1, --repair -> 0")


def main() -> int:
    # The helpers above read the module globals; main rebinds them to the
    # CLI choice so one knob steers every store in the gate.
    global SHARD_SIZE, FAST_RETRY
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, help="scratch directory for the gate")
    parser.add_argument(
        "--kill-after",
        type=float,
        default=0.4,
        help="seconds before the victim worker is SIGKILLed",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=SHARD_SIZE,
        help="shard layout for every store in the gate (default "
             f"{SHARD_SIZE}; the nightly matrix sweeps this)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=FAST_RETRY.max_attempts,
        help="max attempts per faulted unit (default "
             f"{FAST_RETRY.max_attempts}; the nightly matrix sweeps this)",
    )
    args = parser.parse_args()
    SHARD_SIZE = args.shard_size
    FAST_RETRY = RetryPolicy(
        max_attempts=args.retries,
        backoff_base=FAST_RETRY.backoff_base,
        backoff_cap=FAST_RETRY.backoff_cap,
    )
    root = Path(args.root)

    print("== reference: clean serial streamed run")
    reference = stream_campaign(SPEC, root / "reference", shard_size=SHARD_SIZE)
    assert reference.is_complete, "reference run did not complete"

    print("== chaos store: initialise only (max_shards=0)")
    store_dir = root / "store"
    seeded = stream_campaign(SPEC, store_dir, shard_size=SHARD_SIZE, max_shards=0)
    assert seeded.completed == 0, "seed pass must not execute any shard"

    print("== spawn two workers, SIGKILL one mid-run")
    survivor = spawn_worker(store_dir, "survivor")
    victim = spawn_worker(store_dir, "victim")
    time.sleep(args.kill_after)
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL
    survivor_rc = survivor.wait(timeout=300)
    assert survivor_rc == 0, f"surviving worker failed: rc={survivor_rc}"
    print(f"   victim killed after {args.kill_after}s; survivor exited 0")

    print("== finalize: resume pass reclaims the victim's shard")
    recovered = resume_streaming(store_dir)
    assert recovered.is_complete, "reclaimer did not complete the campaign"
    assert not recovered.failures, f"failures after recovery: {recovered.failures}"
    assert recovered.aggregate.equals(reference.aggregate), (
        "recovered aggregate diverged from the clean serial reference"
    )
    assert recovered.frame().equals(reference.frame()), (
        "recovered frame diverged from the clean serial reference"
    )
    print(
        f"   bit-identical: {recovered.completed}/{recovered.total_units} units,"
        f" {recovered.simulated} re-simulated after the kill"
    )

    leases = CampaignStore(store_dir).lease_entries()
    assert leases, "workers left no lease records — pool coordination never engaged"
    print(f"   lease records on {sorted(leases)} in shards.jsonl")

    print("== campaign watch --once over the recovered store")
    subprocess.run(
        cli("campaign", "watch", "--store", str(store_dir), "--once"),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        check=True,
        timeout=60,
    )

    print("== fault-injection matrix: site x kind, recover, doctor sign-off")
    run_fault_matrix(root, reference)

    print("== service round-trip: submit the same spec over the socket")
    service = CampaignService(root / "service", shard_size=SHARD_SIZE)
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=300.0)
        job = client.submit(SPEC.to_dict(), workers=2)
        result = client.wait(job["job"])
        assert result["state"] == "complete", result
        assert result["aggregate"] == reference.aggregate.to_dict(), (
            "service aggregate diverged from the serial reference"
        )
        rerun = client.submit(SPEC.to_dict(), workers=2)
        assert rerun["deduped"] and rerun["job"] == job["job"]
        print(f"   job {job['job']}: complete, deduped on resubmit")
    finally:
        service.stop()

    print("chaos gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
