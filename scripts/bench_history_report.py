#!/usr/bin/env python3
"""Render the rolling bench-history artifact as a markdown trend report.

CI carries benchmark trajectories as a ``bench-history`` artifact: one
``BENCH_<run>_<sha>.json`` pytest-benchmark report per CI run, oldest to
newest by run number.  This script folds that directory into a markdown
table — one row per benchmark, min-runtime columns for the last few runs,
plus the delta of the newest run against the previous one — and is wired
into CI as a ``$GITHUB_STEP_SUMMARY`` step, so the trend is readable on the
run page without downloading artifacts.

Exit status is always 0 for a readable history (an empty directory renders
an explanatory stub): the *gate* is ``check_bench_regression.py``; this is
the report.

Usage::

    python scripts/bench_history_report.py --history bench-history
    python scripts/bench_history_report.py --history bench-history \
        --max-runs 8 --output report.md
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: BENCH_<run-number>_<sha>.json (the seeding step may also leave
#: BENCH_<run-id>.json behind — run id still orders chronologically).
_NAME_PATTERN = re.compile(r"^BENCH_(\d+)(?:_([0-9a-f]+))?\.json$")


def discover_reports(history_dir: Path) -> list[tuple[int, str, Path]]:
    """(run number, label, path) per report, oldest run first."""
    found = []
    for path in history_dir.glob("BENCH_*.json"):
        match = _NAME_PATTERN.match(path.name)
        if not match:
            continue
        run = int(match.group(1))
        sha = match.group(2)
        label = f"#{run}" + (f" `{sha}`" if sha else "")
        found.append((run, label, path))
    found.sort(key=lambda item: item[0])
    return found


def load_minima(path: Path) -> dict[str, float]:
    """Benchmark name -> min seconds, {} for an unreadable report."""
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    minima: dict[str, float] = {}
    for entry in report.get("benchmarks", []):
        try:
            minima[str(entry["name"])] = float(entry["stats"]["min"])
        except (KeyError, TypeError, ValueError):
            continue
    return minima


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "–"
    if value < 1e-3:
        return f"{value * 1e6:.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _fmt_delta(current: float | None, previous: float | None) -> str:
    if current is None or previous is None or previous <= 0:
        return "–"
    change = (current - previous) / previous
    if abs(change) < 0.005:
        return "="
    return f"{change:+.1%}"


def render_report(history_dir: Path, max_runs: int = 6) -> str:
    """The full markdown document for one history directory."""
    reports = discover_reports(history_dir)
    if not reports:
        return (
            "## Benchmark trend\n\n"
            f"No `BENCH_*.json` reports under `{history_dir}` yet — the "
            "history artifact seeds itself from the first successful run.\n"
        )
    window = reports[-max_runs:]
    dropped = len(reports) - len(window)
    columns = [(label, load_minima(path)) for _, label, path in window]
    names = sorted({name for _, minima in columns for name in minima})

    lines = ["## Benchmark trend", ""]
    if dropped:
        lines.append(f"_Showing the last {len(window)} of {len(reports)} runs._")
        lines.append("")
    header = ["benchmark", *[label for label, _ in columns], "Δ last"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for name in names:
        series = [minima.get(name) for _, minima in columns]
        previous = series[-2] if len(series) > 1 else None
        row = [
            f"`{name}`",
            *[_fmt_seconds(value) for value in series],
            _fmt_delta(series[-1], previous),
        ]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append(
        "_Min runtime per benchmark (best round); Δ compares the newest run "
        "to the one before it. The regression gate is normalised and lives "
        "in `check_bench_regression.py` — this table is raw, per-runner "
        "seconds, so cross-run noise is expected._"
    )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", type=Path, required=True,
        help="directory holding BENCH_*.json pytest-benchmark reports",
    )
    parser.add_argument(
        "--max-runs", type=int, default=6,
        help="newest runs to show as columns (default 6)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the markdown here instead of stdout",
    )
    args = parser.parse_args(argv)
    if not args.history.is_dir():
        sys.exit(f"error: {args.history} is not a directory")
    report = render_report(args.history, max_runs=max(args.max_runs, 1))
    if args.output is not None:
        args.output.write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
