#!/usr/bin/env python3
"""CI concurrency gate for the fair-share campaign scheduler.

Proves, against a **live** service socket with a real worker pool, the
scheduler's two load-bearing promises:

1. **Fairness** — small jobs submitted while a large sweep saturates the
   pool complete *before* the sweep (checked both live and against the
   ``scheduler.jsonl`` ledger's ``job_complete`` order),
2. **Bit-identity under interleaving + crash** — one pool worker is
   SIGKILLed mid-interleave, and every job's aggregate must still equal
   its clean serial reference, bit for bit.

The scheduler ledger and the per-job event streams are left in place for
CI to upload as forensic artifacts.

Usage::

    PYTHONPATH=src python scripts/service_fairness_smoke.py --root /tmp/fair

    # nightly extended variant
    PYTHONPATH=src python scripts/service_fairness_smoke.py \
        --root /tmp/fair --sweep-units 10000 --shard-size 4 --small-jobs 5
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import CampaignSpec, stream_campaign
from repro.io.jsonl import read_jsonl
from repro.service import CampaignService, ServiceClient

FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}

#: Small jobs draw seeds far from the sweep's range so they never ride the
#: service's shared unit cache: the fairness proof must be about
#: scheduling, not about cache luck.
SMALL_SEED_BASE = 1_000_000
SMALL_UNITS = 16


def sweep_spec(units: int) -> CampaignSpec:
    return CampaignSpec(
        name="fairness-sweep",
        sweep={"cpu_model": ["EPYC 9654"], "seed": list(range(units))},
        base=FAST_BASE,
    )


def small_spec(index: int) -> CampaignSpec:
    start = SMALL_SEED_BASE + index * SMALL_UNITS
    return CampaignSpec(
        name=f"fairness-small-{index}",
        sweep={
            "cpu_model": ["EPYC 9654"],
            "seed": list(range(start, start + SMALL_UNITS)),
        },
        base=FAST_BASE,
    )


def wait_until(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out after {timeout:.0f}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, help="scratch directory for the gate")
    parser.add_argument("--sweep-units", type=int, default=2000,
                        help="size of the saturating sweep (default 2000)")
    parser.add_argument("--small-jobs", type=int, default=3,
                        help="number of 16-unit jobs submitted mid-sweep")
    parser.add_argument("--shard-size", type=int, default=8,
                        help="service default shard layout (default 8)")
    parser.add_argument("--pool", type=int, default=2,
                        help="worker pool size (default 2)")
    args = parser.parse_args()
    root = Path(args.root)

    print("== serial references: the ground-truth aggregates")
    sweep = sweep_spec(args.sweep_units)
    sweep_ref = stream_campaign(
        sweep, root / "reference" / "sweep", shard_size=args.shard_size
    )
    assert sweep_ref.is_complete
    small_refs = []
    for index in range(args.small_jobs):
        ref = stream_campaign(
            small_spec(index), root / "reference" / f"small-{index}", shard_size=4
        )
        assert ref.is_complete
        small_refs.append(ref)

    print(f"== live service: pool={args.pool} shard_size={args.shard_size}")
    service = CampaignService(
        root / "service", shard_size=args.shard_size, pool=args.pool
    )
    host, port = service.start()
    try:
        client = ServiceClient(host, port, timeout=600.0)

        sweep_job = client.submit(sweep.to_dict())
        wait_until(
            lambda: client.status(sweep_job["job"])
            .get("shards", {})
            .get("rows_flushed", 0)
            > 0,
            timeout=120.0,
            what="the sweep to start flushing shards",
        )
        print(f"   sweep {sweep_job['job']}: running, pool saturated")

        small_jobs = [
            client.submit(small_spec(index).to_dict(), shard_size=4)
            for index in range(args.small_jobs)
        ]

        # Mid-interleave chaos: SIGKILL one pool worker.  The scheduler
        # must requeue its in-flight shard and respawn a replacement
        # without costing any job its result.
        victim = client.stats()["pool"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        print(f"   SIGKILLed pool worker pid {victim} mid-interleave")

        for index, job in enumerate(small_jobs):
            result = client.wait(job["job"])
            assert result["state"] == "complete", result
            assert result["aggregate"] == small_refs[index].aggregate.to_dict(), (
                f"small job {index} diverged from its serial reference"
            )
        sweep_state = client.status(sweep_job["job"])["state"]
        print(
            f"   {args.small_jobs} small jobs complete + bit-identical "
            f"(sweep still {sweep_state})"
        )
        assert sweep_state != "complete", (
            "the sweep finished before the small jobs — fairness gate broken "
            "(either the sweep is too small for this runner or the "
            "scheduler starved the small jobs)"
        )

        sweep_result = client.wait(sweep_job["job"])
        assert sweep_result["state"] == "complete", sweep_result
        assert sweep_result["completed"] == args.sweep_units
        assert sweep_result["aggregate"] == sweep_ref.aggregate.to_dict(), (
            "sweep aggregate diverged from the serial reference after the "
            "worker kill"
        )
        print(f"   sweep complete: {sweep_result['completed']} units, bit-identical")
    finally:
        service.stop()

    print("== scheduler ledger: completion order + crash forensics")
    records = read_jsonl(root / "service" / "scheduler.jsonl")
    completions = [
        r["job"] for r in records if r.get("record") == "job_complete"
    ]
    sweep_done = completions.index(sweep_job["job"])
    for job in small_jobs:
        assert completions.index(job["job"]) < sweep_done, (
            f"ledger disagrees: {job['job']} completed after the sweep"
        )
    kinds = {r["record"] for r in records}
    assert "worker_exit" in kinds, "the SIGKILL never reached the ledger"
    assert "respawn" in kinds, "no replacement worker was spawned"
    dispatched = sum(1 for r in records if r.get("record") == "dispatch")
    print(
        f"   {dispatched} dispatches, {len(completions)} completions, "
        "small jobs first; worker_exit + respawn recorded"
    )

    print("fairness gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
