#!/usr/bin/env python3
"""Gate CI on benchmark regressions against a committed baseline.

Compares a fresh ``pytest-benchmark --benchmark-json`` report against
``benchmarks/baseline.json`` and fails (exit 1) when any gated benchmark
regressed more than ``threshold`` times, or when a gated benchmark
disappeared from the run.  Two choices keep the gate stable on shared CI
runners whose absolute speed differs from the machine that produced the
baseline:

* the *minimum* runtime is compared, not the mean — minima are far less
  sensitive to transient load, and
* ratios are normalised by a **machine-speed probe**: a fixed
  single-threaded NumPy workload timed by this script itself, once when the
  baseline is written (stored in the file) and again at gate time.  The
  probe exercises no repository code, so it measures only how fast the
  machine is — a genuine regression in the code under test cannot hide
  behind it, while baseline-machine vs CI-runner speed differences cancel
  out.  Pass ``--no-normalize`` for plain absolute comparison.

Benchmarks present in the report but absent from the baseline are
informational only, so adding a benchmark never breaks CI — committing its
baseline entry (``--update``) arms the gate.

Usage::

    python scripts/check_bench_regression.py \
        --baseline benchmarks/baseline.json --current bench.json

    # refresh the baseline from a trusted run
    python scripts/check_bench_regression.py \
        --baseline benchmarks/baseline.json --current bench.json --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path


def machine_probe_seconds(rounds: int = 7) -> float:
    """Best-of-N runtime of a fixed, repository-independent NumPy workload.

    Elementwise ufuncs on a preallocated array are single-threaded and
    CPU-bound, which tracks the speed of both the NumPy-heavy and the
    Python-loop-heavy benchmarks well enough for a 2x gate.
    """
    import numpy as np

    data = np.linspace(0.1, 1.0, 2_000_000)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        np.sqrt(data * data + 1.0).sum()
        best = min(best, time.perf_counter() - start)
    return best


def load_current_minima(path: Path) -> dict[str, float]:
    """Benchmark name -> min seconds from a pytest-benchmark JSON report."""
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read benchmark report {path}: {exc}")
    minima: dict[str, float] = {}
    for entry in report.get("benchmarks", []):
        minima[entry["name"]] = float(entry["stats"]["min"])
    if not minima:
        sys.exit(f"error: {path} contains no benchmarks")
    return minima


def load_baseline(path: Path) -> tuple[dict[str, float], float | None]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read baseline {path}: {exc}")
    minima = {name: float(entry["min"]) for name, entry in data["benchmarks"].items()}
    probe = data.get("machine_probe_seconds")
    return minima, float(probe) if probe is not None else None


def write_baseline(path: Path, minima: dict[str, float]) -> None:
    payload = {
        "note": (
            "Committed benchmark baseline (min seconds per benchmark) for "
            "scripts/check_bench_regression.py; machine speed is normalised "
            "out via machine_probe_seconds (a repository-independent NumPy "
            "workload timed by the script), refresh with --update from a "
            "trusted run."
        ),
        "machine_probe_seconds": machine_probe_seconds(),
        "benchmarks": {
            name: {"min": minimum} for name, minimum in sorted(minima.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def write_step_summary(
    rows: list[tuple[str, float, float | None, float | None]],
    threshold: float,
    machine_factor: float,
    summary_path: str | None = None,
) -> None:
    """On gate failure, publish a per-benchmark delta table to the GitHub
    step summary so the offending benchmark is visible without digging
    through the job log.  A no-op outside Actions (no summary file)."""
    path = summary_path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "## Benchmark regression gate failed",
        "",
        f"Threshold {threshold:.1f}x; machine-speed factor "
        f"{machine_factor:.2f}x (normalised out).",
        "",
        "| benchmark | baseline | current | ratio | verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name, base_min, current_min, ratio in rows:
        if current_min is None or ratio is None:
            lines.append(
                f"| `{name}` | {base_min * 1000:.2f} ms | *missing* | - "
                "| :x: missing |"
            )
            continue
        verdict = ":x: regression" if ratio > threshold else ":white_check_mark: ok"
        lines.append(
            f"| `{name}` | {base_min * 1000:.2f} ms "
            f"| {current_min * 1000:.2f} ms | {ratio:.2f}x | {verdict} |"
        )
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    except OSError as exc:  # the gate verdict must not depend on the summary
        print(f"warning: cannot write step summary: {exc}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON (benchmarks/baseline.json)")
    parser.add_argument("--current", type=Path, required=True,
                        help="pytest-benchmark --benchmark-json report of this run")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when min exceeds threshold x baseline (default 2.0)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare absolute times instead of normalising by "
                             "the machine-speed probe")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current report and exit")
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")

    current = load_current_minima(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {len(current)} benchmarks -> {args.baseline}")
        return 0

    baseline, baseline_probe = load_baseline(args.baseline)

    machine_factor = 1.0
    if not args.no_normalize and baseline_probe:
        machine_factor = machine_probe_seconds() / baseline_probe
        print(f"machine-speed factor (probe vs baseline): {machine_factor:.2f}x")
    elif not args.no_normalize:
        print("baseline has no machine probe; comparing absolute times")

    regressions: list[str] = []
    rows: list[tuple[str, float, float | None, float | None]] = []
    width = max((len(name) for name in baseline), default=10)
    print(f"{'benchmark':{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>6}")
    for name, base_min in sorted(baseline.items()):
        if name not in current:
            regressions.append(f"{name}: missing from the current run")
            rows.append((name, base_min, None, None))
            print(f"{name:{width}}  {base_min * 1000:>8.2f}ms  {'MISSING':>10}  {'-':>6}")
            continue
        ratio = (current[name] / base_min) / machine_factor
        rows.append((name, base_min, current[name], ratio))
        flag = "  <-- regression" if ratio > args.threshold else ""
        print(f"{name:{width}}  {base_min * 1000:>8.2f}ms  "
              f"{current[name] * 1000:>8.2f}ms  {ratio:>5.2f}x{flag}")
        if ratio > args.threshold:
            regressions.append(
                f"{name}: {ratio:.2f}x slower than baseline after machine "
                f"normalisation (threshold {args.threshold:.1f}x)"
            )

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"ungated (no baseline entry): {', '.join(extra)}")

    if regressions:
        write_step_summary(rows, args.threshold, machine_factor)
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed "
          f"({len(baseline)} gated, threshold {args.threshold:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
