#!/usr/bin/env python3
"""Produce the paper-vs-measured numbers recorded in EXPERIMENTS.md.

Generates the default paper-scale corpus (seed 2024, 960 clean runs), runs
the full analysis and prints every comparison as plain text.  Used to
populate EXPERIMENTS.md; re-run after any calibration change.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import analyze, generate_corpus, load_dataset
from repro.core import figure4
from repro.parallel import ParallelConfig
from repro.parser import parse_directory
from repro.stats import bin_by_year


def main() -> int:
    output = (
        Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="experiments-"))
    )
    corpus = output / "corpus"
    parallel = ParallelConfig(backend="process", max_workers=8, chunk_size=64)
    generate_corpus(corpus, total_parsed_runs=960, seed=2024, parallel=parallel)
    parse_report = parse_directory(corpus, parallel=parallel)
    print("== corpus ==")
    print(parse_report.describe())
    print("rejections:", dict(sorted(parse_report.rejection_counts().items())))

    runs = load_dataset(corpus, parallel=parallel)
    result = analyze(runs, include_table1=True, include_figures=True)
    print()
    print(result.summary())

    print("== figure yearly series ==")
    filtered = result.filtered
    for metric in ("power_per_socket_100", "overall_efficiency", "idle_fraction",
                   "extrapolated_idle_quotient"):
        yearly = bin_by_year(filtered, metric)
        series = {row["hw_avail_year"]: round(row["mean"], 3) for row in yearly.to_records()}
        print(metric, series)

    print("== figure4 medians (70% load) ==")
    data = figure4(filtered).data
    for vendor in ("Intel", "AMD"):
        rows = [r for r in data.to_records()
                if r["vendor"] == vendor and r["load_level"] == 70 and r["count"] > 0]
        print(vendor, {r["year"]: round(r["median"], 3) for r in rows})

    figures_dir = output / "figures"
    result.save_figures(figures_dir)
    print("figures written to", figures_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
