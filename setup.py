from pathlib import Path

from setuptools import find_packages, setup

_README = Path(__file__).parent / "README.md"

setup(
    name="spectrends",
    version="1.0.0",
    description=(
        "Reproduction of '16 Years of SPEC Power' (CLUSTER 2024): synthetic "
        "SPECpower_ssj2008 corpus, analysis pipeline and campaign engine"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "dev": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"],
    },
    entry_points={
        "console_scripts": [
            "spectrends = repro.cli.main:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Benchmark",
    ],
)
