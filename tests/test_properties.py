"""Property-based tests (hypothesis) on the core data structures and models.

These check invariants rather than specific values:

* Frame/Column operations preserve lengths, masks and round-trip through CSV,
* statistics respect their mathematical bounds,
* the power model is monotonic in load and internally consistent,
* the report renderer and parser form a lossless round trip for the fields
  the analysis uses.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frame import Column, Frame
from repro.frame.csvio import frame_from_csv_text, frame_to_csv_text
from repro.plotting.scale import Extent, LinearScale, nice_ticks
from repro.powermodel import (
    CPUFamily,
    CPUSpec,
    DVFSModel,
    GenerationProfile,
    ServerConfiguration,
    ServerPowerModel,
    Vendor,
)
from repro.stats import box_stats, linear_fit, pearson, summarize
from repro.units import MonthDate

settings.register_profile(
    "repro", deadline=None, max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
optional_floats = st.one_of(st.none(), finite_floats)


# --------------------------------------------------------------------------- #
# Frame / Column invariants
# --------------------------------------------------------------------------- #
@given(st.lists(optional_floats, max_size=200))
def test_column_length_and_missing_count(values):
    column = Column.from_values(values, kind="float")
    assert len(column) == len(values)
    assert column.count() == sum(1 for v in values if v is not None)
    assert column.isna().sum() == len(values) - column.count()


@given(st.lists(optional_floats, min_size=1, max_size=100))
def test_column_fillna_removes_all_missing(values):
    filled = Column.from_values(values, kind="float").fillna(0.0)
    assert filled.count() == len(values)


@given(st.lists(finite_floats, min_size=1, max_size=100))
def test_column_sort_is_ordered(values):
    column = Column.from_values(values, kind="float")
    ordered = column.take(column.sort_indices()).to_list()
    assert ordered == sorted(ordered)


@given(st.lists(optional_floats, max_size=100), st.lists(st.booleans(), max_size=100))
def test_column_filter_length(values, mask_values):
    n = min(len(values), len(mask_values))
    column = Column.from_values(values[:n], kind="float")
    mask = np.asarray(mask_values[:n], dtype=bool)
    assert len(column.filter(mask)) == int(mask.sum())


@given(
    st.lists(
        st.tuples(finite_floats, st.sampled_from(["Intel", "AMD", "Other"])),
        min_size=1, max_size=120,
    )
)
def test_groupby_partitions_rows(rows):
    frame = Frame.from_dict(
        {"value": [r[0] for r in rows], "vendor": [r[1] for r in rows]}
    )
    sizes = frame.groupby("vendor").agg({"n": ("value", "size")})
    assert sizes["n"].sum() == len(frame)
    assert set(sizes["vendor"].to_list()) == {r[1] for r in rows}


@given(
    st.lists(optional_floats, min_size=1, max_size=60),
    st.lists(st.one_of(st.none(), st.text(alphabet="abcXYZ ,;", max_size=8)),
             min_size=1, max_size=60),
)
def test_csv_round_trip(floats, strings):
    n = min(len(floats), len(strings))
    frame = Frame.from_dict({"x": floats[:n], "label": strings[:n]})
    restored = frame_from_csv_text(frame_to_csv_text(frame))
    assert len(restored) == n
    for original, loaded in zip(frame["x"].to_list(), restored["x"].to_list()):
        if original is None:
            assert loaded is None
        else:
            assert loaded == pytest.approx(original, rel=1e-9, abs=1e-9)
    # Blank strings are indistinguishable from missing in CSV; both map to None.
    for original, loaded in zip(frame["label"].to_list(), restored["label"].to_list()):
        if original is None or original.strip() == "":
            assert loaded is None or loaded == original
        else:
            assert str(loaded) == original


# --------------------------------------------------------------------------- #
# Statistics invariants
# --------------------------------------------------------------------------- #
@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_summary_bounds(values):
    summary = summarize(values)
    tolerance = 1e-9 * (1.0 + abs(summary.maximum) + abs(summary.minimum))
    assert summary.minimum <= summary.q25 + tolerance
    assert summary.q25 <= summary.median + tolerance
    assert summary.median <= summary.q75 + tolerance
    assert summary.q75 <= summary.maximum + tolerance
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance


@given(st.lists(finite_floats, min_size=2, max_size=200))
def test_pearson_within_unit_interval(values):
    other = [v * 2 + 1 for v in values]
    result = pearson(values, other)
    assert math.isnan(result) or -1.0000001 <= result <= 1.0000001


@given(
    st.lists(st.tuples(finite_floats, finite_floats), min_size=2, max_size=100)
    .filter(
        lambda pairs: max(p[0] for p in pairs) - min(p[0] for p in pairs) > 1e-3
    )
)
def test_linear_fit_residuals_orthogonal_to_x(pairs):
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    fit = linear_fit(x, y)
    residuals = np.asarray(y) - fit.predict(np.asarray(x))
    xs = np.asarray(x) - np.mean(x)
    # Least squares: residuals are uncorrelated with x.  The numerical noise
    # floor scales with the magnitudes of the inputs, not of the residuals.
    noise_floor = (np.abs(y).max() + 1.0) * (np.abs(xs).max() + 1.0) * len(x)
    assert abs(float(np.dot(residuals, xs))) <= 1e-7 * noise_floor


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_box_stats_whiskers_contain_quartiles(values):
    stats = box_stats(values)
    assert stats.whisker_low <= stats.q25 <= stats.median <= stats.q75 <= stats.whisker_high
    for outlier in stats.outliers:
        assert outlier < stats.whisker_low or outlier > stats.whisker_high


@given(st.floats(min_value=-1e5, max_value=1e5), st.floats(min_value=1e-3, max_value=1e5))
def test_linear_scale_invertible(low, span):
    extent = Extent(low, low + span)
    scale = LinearScale(extent, 0.0, 640.0)
    value = low + span / 3
    assert scale.invert(scale(value)) == pytest.approx(value, rel=1e-6, abs=1e-6)


@given(st.floats(min_value=-1e4, max_value=1e4), st.floats(min_value=1e-3, max_value=1e4),
       st.integers(min_value=2, max_value=12))
def test_nice_ticks_sorted_within_domain(low, span, count):
    extent = Extent(low, low + span)
    ticks = nice_ticks(extent, count)
    assert ticks == sorted(ticks)
    assert all(extent.low - 1e-9 <= t <= extent.high + 1e-9 for t in ticks)


# --------------------------------------------------------------------------- #
# Power model invariants
# --------------------------------------------------------------------------- #
def _profile(s: float, q: float, t: float, iq: float) -> GenerationProfile:
    # Normalise *before* construction: the constructor validates the sum,
    # and when s + q + t > 0.99 the clamped linear fraction would push it
    # past the tolerance.
    linear = max(1.0 - s - q - t, 0.01)
    total = s + linear + q + t
    return GenerationProfile(
        static_fraction=s / total,
        linear_fraction=linear / total,
        quadratic_fraction=q / total,
        turbo_fraction=t / total,
        idle_quotient_mean=iq,
    ).normalized()


profile_strategy = st.builds(
    _profile,
    st.floats(min_value=0.05, max_value=0.7),
    st.floats(min_value=0.0, max_value=0.25),
    st.floats(min_value=0.0, max_value=0.15),
    st.floats(min_value=1.0, max_value=2.5),
)

cpu_strategy = st.builds(
    lambda profile, cores, freq, tdp, year: CPUSpec(
        model=f"Synthetic {cores}C",
        vendor=Vendor.INTEL,
        family=CPUFamily.XEON,
        codename="Hypothesis",
        cores=cores,
        threads_per_core=2,
        base_frequency_mhz=freq,
        max_turbo_mhz=freq * 1.3,
        tdp_w=tdp,
        release=MonthDate(year, 6),
        ssj_ops_per_socket=cores * freq * 25.0,
        profile=profile,
    ),
    profile_strategy,
    st.integers(min_value=2, max_value=128),
    st.floats(min_value=1500.0, max_value=3800.0),
    st.floats(min_value=40.0, max_value=400.0),
    st.integers(min_value=2006, max_value=2024),
)


@given(cpu_strategy, st.integers(min_value=1, max_value=2),
       st.floats(min_value=8.0, max_value=1024.0))
def test_power_model_monotonic_and_bounded(cpu, sockets, memory_gb):
    model = ServerPowerModel(
        ServerConfiguration(cpu=cpu, sockets=sockets, memory_gb=memory_gb)
    )
    loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    powers = [model.node_power_w(load) for load in loads]
    assert all(p > 0 for p in powers)
    assert all(b >= a - 1e-9 for a, b in zip(powers, powers[1:]))
    idle = model.active_idle_power_w()
    assert 0 < idle <= model.extrapolated_idle_power_w() + 1e-9
    assert idle < powers[-1]
    assert model.overall_efficiency() > 0


@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.1, max_value=1.0))
def test_dvfs_activity_factor_bounded(effectiveness, load, floor):
    model = DVFSModel(governor_effectiveness=effectiveness, frequency_floor=floor)
    value = model.activity_factor(load)
    assert 0.0 <= value <= 1.0
    assert value <= load + 1e-9
