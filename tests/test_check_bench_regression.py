"""CI benchmark gate: scripts/check_bench_regression.py behaviour pins.

The gate has to fail *loudly* in every degraded state — a regressed
benchmark, a benchmark that vanished from the run (e.g. its module was
dropped from the bench invocation), an unreadable report — because a silent
skip would let a perf regression ride a green pipeline.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def write_report(path: Path, minima: dict[str, float]) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"min": minimum}}
            for name, minimum in minima.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def write_baseline(path: Path, minima: dict[str, float]) -> Path:
    payload = {
        "machine_probe_seconds": None,
        "benchmarks": {name: {"min": minimum} for name, minimum in minima.items()},
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def run_gate(baseline: Path, current: Path, *extra: str) -> int:
    return gate.main(
        ["--baseline", str(baseline), "--current", str(current),
         "--no-normalize", *extra]
    )


class TestGate:
    def test_passes_within_threshold(self, tmp_path, capsys):
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.015})
        assert run_gate(baseline, current) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.050})
        assert run_gate(baseline, current) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err and "bench_a" in captured.err

    def test_missing_benchmark_fails_loudly(self, tmp_path, capsys):
        # A gated benchmark that disappears from the run (dropped module,
        # renamed test) must fail the gate, not be skipped.
        baseline = write_baseline(
            tmp_path / "base.json", {"bench_a": 0.010, "bench_gone": 0.020}
        )
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.010})
        assert run_gate(baseline, current) == 1
        captured = capsys.readouterr()
        assert "bench_gone: missing from the current run" in captured.err
        assert "MISSING" in captured.out

    def test_every_missing_benchmark_is_reported(self, tmp_path, capsys):
        baseline = write_baseline(
            tmp_path / "base.json",
            {"bench_a": 0.01, "bench_b": 0.01, "bench_c": 0.01},
        )
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.01})
        assert run_gate(baseline, current) == 1
        err = capsys.readouterr().err
        assert "bench_b" in err and "bench_c" in err

    def test_new_benchmarks_are_ungated(self, tmp_path, capsys):
        # Adding a benchmark never breaks CI; committing its baseline entry
        # (--update) arms the gate for it.
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        current = write_report(
            tmp_path / "cur.json", {"bench_a": 0.010, "bench_new": 0.5}
        )
        assert run_gate(baseline, current) == 0
        assert "ungated (no baseline entry): bench_new" in capsys.readouterr().out

    def test_update_rewrites_baseline_with_probe(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        current = write_report(
            tmp_path / "cur.json", {"bench_a": 0.010, "bench_b": 0.020}
        )
        assert run_gate(baseline, current, "--update") == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert sorted(data["benchmarks"]) == ["bench_a", "bench_b"]
        assert data["machine_probe_seconds"] > 0
        # The refreshed baseline immediately gates its own report.
        assert run_gate(baseline, current) == 0

    def test_failure_publishes_step_summary_table(
        self, tmp_path, monkeypatch, capsys
    ):
        # On a failed gate inside GitHub Actions, a per-benchmark delta
        # table lands in $GITHUB_STEP_SUMMARY — regressed, ok, and missing
        # rows alike.
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        baseline = write_baseline(
            tmp_path / "base.json",
            {"bench_slow": 0.010, "bench_ok": 0.010, "bench_gone": 0.020},
        )
        current = write_report(
            tmp_path / "cur.json", {"bench_slow": 0.050, "bench_ok": 0.011}
        )
        assert run_gate(baseline, current) == 1
        capsys.readouterr()
        text = summary.read_text(encoding="utf-8")
        assert "| benchmark | baseline | current | ratio | verdict |" in text
        assert "`bench_slow`" in text and "regression" in text
        assert "`bench_ok`" in text and "ok" in text
        assert "`bench_gone`" in text and "missing" in text

    def test_pass_writes_no_step_summary(self, tmp_path, monkeypatch, capsys):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.011})
        assert run_gate(baseline, current) == 0
        capsys.readouterr()
        assert not summary.exists()

    def test_step_summary_is_noop_outside_actions(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.500})
        assert run_gate(baseline, current) == 1  # fails, but no file I/O

    def test_unreadable_report_exits_with_error(self, tmp_path):
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        broken = tmp_path / "cur.json"
        broken.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit):
            run_gate(baseline, broken)

    def test_empty_report_exits_with_error(self, tmp_path):
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        empty = write_report(tmp_path / "cur.json", {})
        with pytest.raises(SystemExit):
            run_gate(baseline, empty)

    def test_threshold_must_exceed_one(self, tmp_path):
        baseline = write_baseline(tmp_path / "base.json", {"bench_a": 0.010})
        current = write_report(tmp_path / "cur.json", {"bench_a": 0.010})
        with pytest.raises(SystemExit):
            run_gate(baseline, current, "--threshold", "0.5")
