"""Tests for repro.frame.Frame."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import Column, Frame, concat


class TestConstruction:
    def test_from_dict(self, tiny_frame):
        assert tiny_frame.shape == (6, 4)
        assert tiny_frame.columns == ["year", "vendor", "power", "sockets"]

    def test_from_records_union_of_keys(self):
        frame = Frame.from_records([{"a": 1}, {"b": 2}])
        assert frame.columns == ["a", "b"]
        assert frame["a"].to_list() == [1, None]
        assert frame["b"].to_list() == [None, 2]

    def test_from_records_explicit_columns(self):
        frame = Frame.from_records([{"a": 1, "b": 2}], columns=["b"])
        assert frame.columns == ["b"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(FrameError):
            Frame.from_dict({"a": [1, 2], "b": [1]})

    def test_empty_frame(self):
        frame = Frame.empty(["x"])
        assert len(frame) == 0
        assert frame.columns == ["x"]


class TestSelection:
    def test_getitem_column(self, tiny_frame):
        assert isinstance(tiny_frame["year"], Column)

    def test_getitem_unknown_column(self, tiny_frame):
        with pytest.raises(FrameError):
            tiny_frame["missing"]

    def test_getitem_list_projects(self, tiny_frame):
        sub = tiny_frame[["vendor", "year"]]
        assert sub.columns == ["vendor", "year"]

    def test_getitem_mask_filters(self, tiny_frame):
        sub = tiny_frame[np.array([True] * 3 + [False] * 3)]
        assert len(sub) == 3

    def test_select_unknown_rejected(self, tiny_frame):
        with pytest.raises(FrameError):
            tiny_frame.select(["year", "bogus"])

    def test_drop(self, tiny_frame):
        assert "power" not in tiny_frame.drop("power")

    def test_rename(self, tiny_frame):
        renamed = tiny_frame.rename({"power": "watts"})
        assert "watts" in renamed and "power" not in renamed

    def test_head_tail(self, tiny_frame):
        assert len(tiny_frame.head(2)) == 2
        assert tiny_frame.tail(1)["year"][0] == 2023

    def test_row(self, tiny_frame):
        row = tiny_frame.row(0)
        assert row["vendor"] == "Intel"
        assert row["year"] == 2007

    def test_row_out_of_range(self, tiny_frame):
        with pytest.raises(FrameError):
            tiny_frame.row(99)

    def test_iter_rows_and_to_records(self, tiny_frame):
        records = tiny_frame.to_records()
        assert len(records) == 6
        assert records[2]["power"] is None


class TestColumnsManipulation:
    def test_with_column_scalar(self, tiny_frame):
        frame = tiny_frame.with_column("flag", True)
        assert frame["flag"].to_list() == [True] * 6

    def test_with_column_list(self, tiny_frame):
        frame = tiny_frame.with_column("double", [v * 2 for v in range(6)])
        assert frame["double"][3] == 6

    def test_with_column_numpy(self, tiny_frame):
        frame = tiny_frame.with_column("arr", np.arange(6))
        assert frame["arr"].kind == "int"

    def test_with_column_wrong_length(self, tiny_frame):
        with pytest.raises(FrameError):
            tiny_frame.with_column("bad", [1, 2])

    def test_with_column_replaces_existing(self, tiny_frame):
        frame = tiny_frame.with_column("power", [1.0] * 6)
        assert frame["power"].to_list() == [1.0] * 6

    def test_assign_from_frame(self, tiny_frame):
        frame = tiny_frame.assign("power_per_socket", lambda f: f["power"] / f["sockets"])
        assert frame["power_per_socket"][0] == pytest.approx(105.0)

    def test_filter_with_column_mask(self, tiny_frame):
        amd = tiny_frame.filter(tiny_frame["vendor"] == "AMD")
        assert len(amd) == 3
        assert set(amd["vendor"].to_list()) == {"AMD"}

    def test_filter_wrong_length(self, tiny_frame):
        with pytest.raises(FrameError):
            tiny_frame.filter(np.array([True, False]))


class TestSortingAndDedup:
    def test_sort_by_single_key(self, tiny_frame):
        ordered = tiny_frame.sort_by("power")
        powers = [p for p in ordered["power"].to_list() if p is not None]
        assert powers == sorted(powers)
        assert ordered["power"].to_list()[-1] is None  # missing last

    def test_sort_by_descending(self, tiny_frame):
        ordered = tiny_frame.sort_by("power", descending=True)
        assert ordered["power"][0] == 720.0

    def test_sort_by_multiple_keys(self, tiny_frame):
        ordered = tiny_frame.sort_by(["vendor", "year"])
        assert ordered["vendor"].to_list()[:3] == ["AMD", "AMD", "AMD"]
        amd_years = ordered["year"].to_list()[:3]
        assert amd_years == sorted(amd_years)

    def test_sort_is_stable(self):
        frame = Frame.from_dict({"key": [1, 1, 1], "tag": ["a", "b", "c"]})
        assert frame.sort_by("key")["tag"].to_list() == ["a", "b", "c"]

    def test_descending_length_mismatch(self, tiny_frame):
        with pytest.raises(FrameError):
            tiny_frame.sort_by(["year", "vendor"], descending=[True])

    def test_unique(self, tiny_frame):
        assert len(tiny_frame.unique("vendor")) == 2

    def test_unique_multi_key(self, tiny_frame):
        assert len(tiny_frame.unique(["vendor", "sockets"])) == 3

    def test_dropna(self, tiny_frame):
        assert len(tiny_frame.dropna("power")) == 5

    def test_dropna_all_columns(self, tiny_frame):
        assert len(tiny_frame.dropna()) == 5


class TestSummaries:
    def test_value_counts(self, tiny_frame):
        counts = tiny_frame.value_counts("vendor")
        assert counts.columns == ["vendor", "count"]
        assert counts["count"].to_list() == [3, 3]

    def test_describe(self, tiny_frame):
        described = tiny_frame.describe(["power"])
        row = described.row(0)
        assert row["count"] == 5
        assert row["max"] == 720.0

    def test_to_string_preview(self, tiny_frame):
        text = tiny_frame.to_string(max_rows=2)
        assert "vendor" in text
        assert "more rows" in text

    def test_equals(self, tiny_frame):
        assert tiny_frame.equals(tiny_frame.select(tiny_frame.columns))
        assert not tiny_frame.equals(tiny_frame.drop("power"))


class TestConcat:
    def test_concat_same_columns(self, tiny_frame):
        combined = concat([tiny_frame, tiny_frame])
        assert len(combined) == 12

    def test_concat_union_columns(self):
        a = Frame.from_dict({"x": [1]})
        b = Frame.from_dict({"y": [2]})
        combined = concat([a, b])
        assert combined.columns == ["x", "y"]
        assert combined["x"].to_list() == [1, None]

    def test_concat_empty_list(self):
        assert len(concat([])) == 0

    def test_concat_skips_none(self, tiny_frame):
        assert len(concat([tiny_frame, None])) == 6

    def test_concat_shared_schema_uses_array_path(self):
        # Columns present in every input with one kind are stitched as
        # array work; the result must match the per-value route exactly,
        # masks included.
        a = Frame.from_dict({"x": [1.0, None], "n": [1, 2], "s": ["p", None]})
        b = Frame.from_dict({"x": [3.0, 4.0], "n": [None, 4], "s": ["q", "r"]})
        combined = concat([a, b])
        assert combined["x"].to_list() == [1.0, None, 3.0, 4.0]
        assert combined["n"].to_list() == [1, 2, None, 4]
        assert combined["s"].to_list() == ["p", None, "q", "r"]
        assert combined["x"].kind == "float" and combined["n"].kind == "int"
        reference = Frame.from_dict(
            {
                "x": [1.0, None, 3.0, 4.0],
                "n": [1, 2, None, 4],
                "s": ["p", None, "q", "r"],
            }
        )
        assert combined.equals(reference)

    def test_concat_mixed_kinds_reconciled(self):
        a = Frame.from_dict({"x": [1, 2]})  # int
        b = Frame.from_dict({"x": [0.5]})  # float
        combined = concat([a, b])
        assert combined["x"].kind == "float"
        assert combined["x"].to_list() == [1.0, 2.0, 0.5]

    def test_concat_single_frame_round_trip(self, tiny_frame):
        assert concat([tiny_frame]).equals(tiny_frame)


class TestMemoryUsage:
    def test_nbytes_sums_columns(self, tiny_frame):
        assert tiny_frame.nbytes == sum(
            tiny_frame[name].nbytes for name in tiny_frame.columns
        )
        assert tiny_frame.nbytes > 0

    def test_memory_usage_frame_shape_and_order(self, tiny_frame):
        usage = tiny_frame.memory_usage()
        assert usage.columns == ["column", "kind", "nbytes"]
        assert len(usage) == len(tiny_frame.columns)
        assert set(usage["column"].to_list()) == set(tiny_frame.columns)
        sizes = usage["nbytes"].to_list()
        assert sizes == sorted(sizes, reverse=True)

    def test_memory_usage_empty_frame(self):
        usage = Frame().memory_usage()
        assert usage.columns == ["column", "kind", "nbytes"]
        assert len(usage) == 0
        assert Frame().nbytes == 0
