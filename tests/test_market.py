"""Tests for the market model: catalog, trends, fleet sampling, anomalies."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.market import (
    AnomalyKind,
    AnomalyPlan,
    Catalog,
    FleetSampler,
    default_anomaly_plan,
    default_trends,
)
from repro.powermodel import Vendor


class TestCatalog:
    def test_contains_both_vendors_and_eras(self, catalog):
        years = [entry.cpu.release.year for entry in catalog.server_entries()]
        assert min(years) <= 2006 and max(years) >= 2023
        vendors = {entry.cpu.vendor for entry in catalog.server_entries()}
        assert vendors == {Vendor.INTEL, Vendor.AMD}

    def test_get_known_model(self, catalog):
        assert catalog.get("EPYC 9754").cpu.cores == 128

    def test_get_unknown_model_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("Xeon Imaginary 9999")

    def test_filtered_entries_are_non_server(self, catalog):
        for entry in catalog.filtered_entries():
            assert not entry.cpu.family.is_server_x86

    def test_available_in_window(self, catalog):
        entries = catalog.available_in(2010, vendor=Vendor.INTEL)
        assert entries
        for entry in entries:
            assert entry.cpu.release.year <= 2010
            assert entry.cpu.vendor == Vendor.INTEL

    def test_available_in_gap_year_falls_back(self, catalog):
        # AMD had no new server part around 2014/2015; the sampler must still
        # find something to submit.
        assert catalog.available_in(2015, vendor=Vendor.AMD)

    def test_available_every_year(self, catalog):
        for year in range(2005, 2025):
            assert catalog.available_in(year), f"no parts available in {year}"

    def test_by_vendor(self, catalog):
        amd = catalog.by_vendor(Vendor.AMD)
        assert all(entry.cpu.vendor == Vendor.AMD for entry in amd)

    def test_empty_catalog_rejected(self):
        with pytest.raises(CatalogError):
            Catalog([])

    def test_throughput_grows_over_time(self, catalog):
        by_year = sorted(
            catalog.server_entries(), key=lambda e: e.cpu.release.decimal_year
        )
        early_mean = np.mean([e.cpu.ssj_ops_per_socket for e in by_year[:5]])
        late_mean = np.mean([e.cpu.ssj_ops_per_socket for e in by_year[-5:]])
        assert late_mean > 20 * early_mean


class TestTrends:
    def test_runs_per_year_total_exact(self):
        trends = default_trends()
        counts = trends.runs_per_year(960)
        assert sum(counts.values()) == 960
        assert set(counts) == set(range(2005, 2025))

    def test_runs_per_year_dip_2013_2017(self):
        counts = default_trends().runs_per_year(960)
        dip = np.mean([counts[y] for y in range(2013, 2018)])
        overall = np.mean([counts[y] for y in range(2005, 2024)])
        assert dip < overall / 2

    def test_runs_per_year_too_small_rejected(self):
        with pytest.raises(CatalogError):
            default_trends().runs_per_year(5)

    def test_amd_share_rises_after_2017(self):
        trends = default_trends()
        assert trends.amd_probability(2023) > 2 * trends.amd_probability(2015)

    def test_linux_share_rises_after_2017(self):
        trends = default_trends()
        assert trends.linux_probability(2023) > 0.3
        assert trends.linux_probability(2010) < 0.05

    def test_operating_system_strings(self, rng):
        trends = default_trends()
        early = trends.operating_system(2008, rng)
        assert "Windows" in early or "Solaris" in early
        names = {trends.operating_system(2023, rng) for _ in range(50)}
        assert any("Linux" in n or "SUSE" in n or "Red Hat" in n for n in names)

    def test_jvm_matches_era(self):
        trends = default_trends()
        assert "JRockit" in trends.jvm_name(2008, "Microsoft Windows Server 2008")
        assert "17" in trends.jvm_name(2023, "SUSE Linux Enterprise Server 15 SP4")

    def test_sample_sockets_respects_allowed(self, rng):
        trends = default_trends()
        for _ in range(20):
            assert trends.sample_sockets(rng, allowed=(2,)) == 2

    def test_sample_vendor_and_nodes(self, rng):
        trends = default_trends()
        assert trends.sample_system_vendor(rng) in trends.system_vendors
        assert trends.sample_nodes(rng) in trends.node_weights


class TestAnomalies:
    def test_default_plan_matches_paper_counts(self):
        plan = default_anomaly_plan()
        assert plan.total == 57
        assert plan.counts[AnomalyKind.NOT_ACCEPTED] == 40

    def test_expand_length(self):
        assert len(default_anomaly_plan().expand()) == 57

    def test_scaled_keeps_every_kind(self):
        scaled = default_anomaly_plan().scaled(0.1)
        assert all(count >= 1 for count in scaled.counts.values())

    def test_scaled_zero(self):
        assert default_anomaly_plan().scaled(0).total == 0

    def test_negative_count_rejected(self):
        with pytest.raises(CatalogError):
            AnomalyPlan({AnomalyKind.NOT_ACCEPTED: -1})


class TestFleetSampler:
    def test_deterministic_for_seed(self, catalog):
        sampler = FleetSampler(total_parsed_runs=80, catalog=catalog)
        a = sampler.sample(seed=3)
        b = sampler.sample(seed=3)
        assert [p.run_id for p in a.systems] == [p.run_id for p in b.systems]
        assert [p.cpu_model for p in a.systems] == [p.cpu_model for p in b.systems]

    def test_different_seed_differs(self, catalog):
        sampler = FleetSampler(total_parsed_runs=80, catalog=catalog)
        a = sampler.sample(seed=3)
        b = sampler.sample(seed=4)
        assert [p.cpu_model for p in a.systems] != [p.cpu_model for p in b.systems]

    def test_counts_scale_with_total(self, sample_fleet):
        # 60 clean runs requested; defects are added on top.
        assert len(sample_fleet.clean) == 60
        assert len(sample_fleet.defective) > 0
        assert len(sample_fleet) == len(sample_fleet.clean) + len(sample_fleet.defective)

    def test_special_categories_present(self, sample_fleet):
        assert sample_fleet.count_category("other_vendor") >= 1
        assert sample_fleet.count_category("desktop") >= 1
        assert sample_fleet.count_multi() >= 1

    def test_analysable_excludes_multi_and_special(self, sample_fleet):
        for plan in sample_fleet.analysable():
            assert plan.category == "server"
            assert plan.nodes == 1 and plan.sockets <= 2

    def test_paper_scale_funnel(self, catalog):
        sampler = FleetSampler(total_parsed_runs=960, catalog=catalog)
        fleet = sampler.sample(seed=1)
        assert len(fleet) == 1017
        assert len(fleet.clean) == 960
        assert len(fleet.defective) == 57
        assert fleet.count_category("other_vendor") == 9
        assert fleet.count_category("desktop") == 6
        assert fleet.count_multi() == 269
        assert len(fleet.analysable()) == 676

    def test_hw_dates_span_2005_2024(self, sample_fleet):
        years = [plan.hw_avail.year for plan in sample_fleet.clean]
        assert min(years) <= 2007
        assert max(years) >= 2022

    def test_publication_not_before_test(self, sample_fleet):
        for plan in sample_fleet.systems:
            assert not (plan.publication_date < plan.test_date)

    def test_too_small_total_rejected(self, catalog):
        with pytest.raises(CatalogError):
            FleetSampler(total_parsed_runs=10, catalog=catalog)

    def test_special_exceeding_total_rejected(self, catalog):
        with pytest.raises(CatalogError):
            FleetSampler(total_parsed_runs=60, catalog=catalog,
                         multi_node_or_socket_runs=100)

    def test_plan_psu_covers_tdp(self, sample_fleet, catalog):
        for plan in sample_fleet.clean:
            entry = catalog.get(plan.cpu_model)
            assert plan.psu_rating_w >= entry.cpu.tdp_w
