"""Parse-bypass bit-identity: derived records vs the render→parse round trip.

``derive_record`` promises *bit-identical* output to
``parse_result_text(render_report(result))`` — every float quantised to the
report's printed precision, every anomaly reproduced, every classification
identical.  These tests pin that contract over a sampled fleet that covers
each anomaly kind, plus the full-funnel equality of ``derive_corpus_report``
against a real ``parse_directory`` run (scalar and batch simulation paths).
"""

from __future__ import annotations

import pytest

from repro.market.anomalies import AnomalyKind
from repro.market.fleet import FleetSampler
from repro.parser import parse_directory
from repro.parser.resultfile import parse_result_text
from repro.reportgen import (
    derive_corpus_report,
    derive_record,
    generate_corpus_files,
    render_report,
)
from repro.simulator.director import RunDirector, SimulationOptions

RUNS = 60
SEED = 2024


@pytest.fixture(scope="module")
def sampled_fleet():
    fleet = FleetSampler(total_parsed_runs=120).sample(7)
    # The sampled fleet must exercise every injected defect, or the
    # per-anomaly identity below would silently test nothing.
    assert {plan.anomaly for plan in fleet.systems} == set(AnomalyKind) | {None}
    return fleet


@pytest.mark.parametrize(
    "options",
    [
        SimulationOptions(),
        SimulationOptions(measurement_noise=False),
        SimulationOptions(load_levels=(1.0, 0.7, 0.5, 0.2, 0.1, 0.0)),
    ],
    ids=["default", "noise-free", "short-ladder"],
)
def test_derive_record_bit_identical_to_text_round_trip(sampled_fleet, options):
    director = RunDirector(options=options, corpus_seed=7)
    for plan in sampled_fleet.systems:
        result = director.run(plan)
        direct = derive_record(result)
        parsed = parse_result_text(
            render_report(result), file_name=plan.file_name
        ).record
        assert direct.to_dict() == parsed.to_dict(), (
            f"record drift for {plan.run_id} (anomaly={plan.anomaly})"
        )


def _funnel_signature(report):
    return (
        [record.to_dict() for record in report.records],
        [(f.file_name, f.reason) for f in report.rejected],
    )


@pytest.mark.parametrize("batch", [False, True], ids=["scalar", "batch"])
def test_derive_corpus_report_matches_parse_directory(tmp_path, batch):
    corpus = tmp_path / "corpus"
    generate_corpus_files(corpus, total_parsed_runs=RUNS, seed=SEED)
    parsed = parse_directory(corpus)
    derived = derive_corpus_report(
        corpus, total_parsed_runs=RUNS, seed=SEED, batch=batch
    )
    assert derived.directory == parsed.directory
    assert derived.parsed_count == parsed.parsed_count
    assert _funnel_signature(derived) == _funnel_signature(parsed)


def test_derive_corpus_report_batch_equals_scalar():
    scalar = derive_corpus_report("x", total_parsed_runs=RUNS, seed=SEED)
    batch = derive_corpus_report("x", total_parsed_runs=RUNS, seed=SEED, batch=True)
    assert _funnel_signature(scalar) == _funnel_signature(batch)
