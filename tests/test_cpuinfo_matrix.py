"""Broad CPU-name classification matrix.

The filter funnel of the paper hinges on classifying free-text CPU names
correctly; this matrix covers the name shapes that occur across 16 years of
submissions (suffixes, frequency annotations, lowercase, marketing noise).
"""

import pytest

from repro.parser import classify_cpu


@pytest.mark.parametrize(
    "name, vendor, family",
    [
        ("Intel Xeon 5160", "Intel", "Xeon"),
        ("Intel Xeon L5420", "Intel", "Xeon"),
        ("Intel Xeon X5670 2.93 GHz", "Intel", "Xeon"),
        ("Intel Xeon E5-2660 v3", "Intel", "Xeon"),
        ("Intel Xeon E3-1260L", "Intel", "Xeon"),
        ("Intel Xeon Platinum 8380", "Intel", "Xeon"),
        ("Intel Xeon Gold 6252", "Intel", "Xeon"),
        ("Intel Xeon Silver 4116", "Intel", "Xeon"),
        ("Intel Xeon D-1541", "Intel", "Xeon"),
        ("intel xeon platinum 8490h", "Intel", "Xeon"),
        ("AMD Opteron 2356", "AMD", "Opteron"),
        ("AMD Opteron 6174 (Magny-Cours)", "AMD", "Opteron"),
        ("AMD EPYC 7601", "AMD", "EPYC"),
        ("AMD EPYC 9754 2.25GHz", "AMD", "EPYC"),
        ("AMD EPYC 8324P", "AMD", "EPYC"),
    ],
)
def test_server_cpus_classified_as_server(name, vendor, family):
    info = classify_cpu(name)
    assert info.vendor == vendor
    assert info.family == family
    assert info.cpu_class == "server"
    assert info.is_x86_server
    assert not info.is_ambiguous


@pytest.mark.parametrize(
    "name",
    [
        "Intel Core 2 Duo E6700",
        "Intel Core i7-2600",
        "Intel Core i9-9900K",
        "Intel Pentium D 930",
        "Intel Celeron G1101",
        "AMD Athlon 64 X2 5200+",
        "AMD Phenom II X6 1090T",
        "AMD Ryzen 7 3700X",
        "AMD FX-8350",
    ],
)
def test_desktop_cpus_not_server(name):
    info = classify_cpu(name)
    assert info.cpu_class == "desktop"
    assert not info.is_x86_server


@pytest.mark.parametrize(
    "name, expected_vendor",
    [
        ("IBM POWER7 8-core 3.55 GHz", "IBM"),
        ("POWER9 22-core", "IBM"),
        ("Oracle SPARC T4", "Oracle"),
        ("Cavium ThunderX2 CN9975", "Cavium"),
        ("Ampere Altra Q80-30", "Ampere"),
        ("AWS Graviton3", "Amazon"),
        ("Huawei Kunpeng 920", "Huawei"),
        ("Intel Itanium 9350", "Intel"),
    ],
)
def test_non_x86_cpus_flagged(name, expected_vendor):
    info = classify_cpu(name)
    assert info.cpu_class == "non_x86"
    assert info.vendor == expected_vendor
    assert not info.is_x86_server


@pytest.mark.parametrize("name", ["Intel Processor", "AMD Processor", "Xeon", "EPYC", ""])
def test_vague_names_are_ambiguous(name):
    assert classify_cpu(name).is_ambiguous


def test_model_token_extraction():
    assert classify_cpu("Intel Xeon Platinum 8490H").model_token == "8490H"
    assert classify_cpu("AMD EPYC 9754").model_token == "9754"
    assert classify_cpu("Intel Xeon E5-2660 v3").model_token in ("E5-2660", "v3")
