"""Tests for the exception hierarchy, canonical field helpers and run records."""

import pytest

from repro import errors
from repro.parser.fields import LOAD_LEVELS, RunRecord, level_field


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)
            assert issubclass(cls, Exception)

    def test_frame_error_family(self):
        for cls in (errors.ColumnError, errors.GroupByError, errors.JoinError,
                    errors.CSVError):
            assert issubclass(cls, errors.FrameError)

    def test_parse_error_location_formatting(self):
        error = errors.ParseError("bad field", path="r1.txt", line=12)
        assert "r1.txt:12" in str(error)
        assert error.path == "r1.txt" and error.line == 12

    def test_parse_error_without_location(self):
        assert str(errors.ParseError("bad field")) == "bad field"

    def test_field_error_is_parse_error(self):
        assert issubclass(errors.FieldError, errors.ParseError)

    def test_filter_error_is_analysis_error(self):
        assert issubclass(errors.FilterError, errors.AnalysisError)

    def test_catching_base_class_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")


class TestLevelField:
    def test_zero_padded_names(self):
        assert level_field("power", 70) == "power_070"
        assert level_field("ssj_ops", 100) == "ssj_ops_100"
        assert level_field("actual_load", 10) == "actual_load_010"

    def test_names_sort_lexicographically_with_level(self):
        names = [level_field("power", level) for level in sorted(LOAD_LEVELS)]
        assert names == sorted(names)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            level_field("energy", 50)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            level_field("power", 55)

    def test_load_levels_definition(self):
        assert LOAD_LEVELS[0] == 100
        assert LOAD_LEVELS[-1] == 10
        assert len(LOAD_LEVELS) == 10
        assert list(LOAD_LEVELS) == sorted(LOAD_LEVELS, reverse=True)


class TestRunRecord:
    def test_set_and_get_level(self):
        record = RunRecord(run_id="r")
        record.set_level("power", 70, 123.4)
        assert record.get_level("power", 70) == 123.4
        assert record.get_level("power", 80) is None

    def test_to_dict_contains_every_level_column(self):
        row = RunRecord(run_id="r").to_dict()
        for kind in ("power", "ssj_ops", "actual_load"):
            for level in LOAD_LEVELS:
                assert level_field(kind, level) in row
                assert row[level_field(kind, level)] is None

    def test_to_dict_flattens_per_level(self):
        record = RunRecord(run_id="r")
        record.set_level("ssj_ops", 100, 1000.0)
        row = record.to_dict()
        assert row["ssj_ops_100"] == 1000.0
        assert "per_level" not in row

    def test_defaults(self):
        record = RunRecord()
        assert record.accepted is True
        assert record.cpu_vendor is None
        assert record.nodes is None
