"""Tests for trends, proportionality, the correlation study, figures,
Table I and the report assembly."""


import numpy as np
import pytest

from repro.core import (
    build_report,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    headline_findings,
    proportionality_scores,
    run_correlation_study,
    share_shift,
    submissions_per_year,
    table1,
)
from repro.core.proportionality import attach_proportionality
from repro.core.tables import PAPER_TABLE1, table1_frame
from repro.errors import AnalysisError
from repro.frame import Frame


class TestTrends:
    def test_submissions_per_year(self, run_frame):
        findings = submissions_per_year(run_frame)
        names = {f.name for f in findings}
        assert {"submissions_per_year", "submissions_per_year_2013_2017"} <= names
        overall = next(f for f in findings if f.name == "submissions_per_year")
        dip = next(f for f in findings if f.name == "submissions_per_year_2013_2017")
        assert dip.measured_value < overall.measured_value

    def test_share_shift_linux(self, run_frame):
        before, after = share_shift(run_frame, "is_linux")
        assert before < 0.1
        assert after > 0.2

    def test_share_shift_amd(self, run_frame):
        before, after = share_shift(run_frame, "is_amd")
        assert after > before

    def test_share_shift_unknown_column(self, run_frame):
        with pytest.raises(AnalysisError):
            share_shift(run_frame, "bogus")

    def test_headline_findings_complete(self, run_frame, filtered_frame):
        findings = headline_findings(run_frame, filtered_frame)
        names = {f.name for f in findings}
        expected = {
            "power_per_socket_full_load_early",
            "power_per_socket_full_load_late",
            "idle_fraction_2006",
            "idle_fraction_minimum",
            "idle_fraction_2024",
            "amd_share_of_top100_efficiency",
            "linux_share_before_2018",
            "amd_share_from_2018",
        }
        assert expected <= names

    def test_power_growth_direction(self, run_frame, filtered_frame):
        findings = {f.name: f for f in headline_findings(run_frame, filtered_frame)}
        growth = findings["power_growth_power_per_socket_100"]
        assert growth.measured_value > 1.5  # power clearly grew
        early = findings["power_per_socket_full_load_early"]
        late = findings["power_per_socket_full_load_late"]
        assert late.measured_value > early.measured_value

    def test_idle_fraction_u_shape(self, run_frame, filtered_frame):
        findings = {f.name: f for f in headline_findings(run_frame, filtered_frame)}
        assert findings["idle_fraction_2006"].measured_value > 0.4
        assert findings["idle_fraction_minimum"].measured_value < 0.3
        assert (
            findings["idle_fraction_2024"].measured_value
            > findings["idle_fraction_minimum"].measured_value
        )

    def test_amd_dominates_top_efficiency(self, filtered_frame):
        # On the small session corpus the paper's "top 100" would cover most
        # of the dataset, so check the statistic on the top ~10 % instead.
        from repro.core import top_n_vendor_share

        n = max(10, len(filtered_frame) // 10)
        assert top_n_vendor_share(filtered_frame, "AMD", n=n) > 0.6

    def test_relative_error_computation(self, run_frame, filtered_frame):
        findings = headline_findings(run_frame, filtered_frame)
        for finding in findings:
            if finding.paper_value not in (None, 0):
                assert finding.relative_error is not None
            assert finding.describe()


class TestProportionality:
    def test_scores_for_synthetic_runs(self):
        from tests.test_core_metrics_dataset import _synthetic_run_frame

        frame = _synthetic_run_frame()
        scores = proportionality_scores(frame)
        proportional, flat = scores
        assert proportional.ep_score > 0.9
        assert proportional.dynamic_range == pytest.approx(0.9)
        assert flat.ep_score < 0.4
        assert flat.dynamic_range == pytest.approx(0.25)
        assert flat.linear_deviation > proportional.linear_deviation

    def test_attach_proportionality(self, filtered_frame):
        frame = attach_proportionality(filtered_frame)
        assert {"ep_score", "dynamic_range", "linear_deviation"} <= set(frame.columns)
        values = [v for v in frame["ep_score"].to_list() if v is not None]
        assert values and all(-1.0 <= v <= 1.001 for v in values)

    def test_proportionality_improves_over_time(self, filtered_frame):
        frame = attach_proportionality(filtered_frame)
        early = frame.filter(frame["hw_avail_year"] <= 2010)
        late = frame.filter(frame["hw_avail_year"] >= 2019)
        early_mean = np.nanmean(np.asarray(early["ep_score"].to_list(), dtype=float))
        late_mean = np.nanmean(np.asarray(late["ep_score"].to_list(), dtype=float))
        assert late_mean > early_mean


class TestCorrelationStudy:
    def test_study_runs(self, filtered_frame):
        study = run_correlation_study(filtered_frame, since_year=2021)
        assert study.n_runs >= 5
        assert "cores_total" in study.correlations.features
        correlations = study.idle_fraction_correlations()
        assert all(-1.0001 <= v <= 1.0001 for v in correlations.values() if v == v)

    def test_amd_has_more_cores_than_intel(self, filtered_frame):
        study = run_correlation_study(filtered_frame, since_year=2021)
        amd = study.vendor_summary("cores_total", "AMD")
        intel = study.vendor_summary("cores_total", "Intel")
        assert amd.mean > intel.mean

    def test_inconclusive_like_paper(self, filtered_frame):
        study = run_correlation_study(filtered_frame, since_year=2021)
        assert not study.is_conclusive()

    def test_describe(self, filtered_frame):
        text = run_correlation_study(filtered_frame, since_year=2021).describe()
        assert "idle fraction" in text

    def test_unknown_vendor_summary_rejected(self, filtered_frame):
        study = run_correlation_study(filtered_frame, since_year=2021)
        with pytest.raises(AnalysisError):
            study.vendor_summary("cores_total", "VIA")

    def test_too_few_runs_rejected(self, filtered_frame):
        with pytest.raises(AnalysisError):
            run_correlation_study(filtered_frame, since_year=2060)


class TestFigures:
    def test_figure1_panels_and_data(self, run_frame):
        artifact = figure1(run_frame)
        assert set(artifact.charts) == {"counts", "os", "cpu_vendor", "sockets", "nodes"}
        assert {"year", "count", "intel", "amd", "linux"} <= set(artifact.data.columns)
        total = artifact.data["count"].sum()
        assert total == len(run_frame.dropna(["hw_avail_year"]))

    def test_figure2_to_6_have_scatter_data(self, filtered_frame):
        for builder, column in (
            (figure2, "power_per_socket_100"),
            (figure3, "overall_efficiency"),
            (figure5, "idle_fraction"),
            (figure6, "extrapolated_idle_quotient"),
        ):
            artifact = builder(filtered_frame)
            assert column in artifact.data.columns
            assert len(artifact.data) > 0
            assert artifact.charts

    def test_figure4_boxes_per_vendor(self, filtered_frame):
        artifact = figure4(filtered_frame)
        assert set(artifact.charts) <= {"amd", "intel"}
        assert {"vendor", "year", "load_level", "median"} <= set(artifact.data.columns)
        assert set(artifact.data["load_level"].to_list()) == {60, 70, 80, 90}

    def test_figure4_early_relative_efficiency_below_one(self, filtered_frame):
        artifact = figure4(filtered_frame)
        data = artifact.data
        early = data.filter((data["year"] <= 2009) & (data["count"] > 0))
        if len(early):
            medians = [v for v in early["median"].to_list() if v is not None]
            assert np.mean(medians) < 1.0

    def test_figures_save(self, filtered_frame, run_frame, tmp_path):
        for artifact in (figure1(run_frame), figure2(filtered_frame)):
            written = artifact.save(tmp_path)
            assert any(p.suffix == ".csv" for p in written)
            assert any(p.suffix == ".svg" for p in written)
            for path in written:
                assert path.exists() and path.stat().st_size > 0

    def test_missing_columns_rejected(self):
        with pytest.raises(AnalysisError):
            figure2(Frame.from_dict({"x": [1]}))


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1()

    def test_six_rows(self, rows):
        assert len(rows) == 6
        assert {row.benchmark for row in rows} == set(PAPER_TABLE1)

    def test_intel_rows_have_factor_one(self, rows):
        for row in rows:
            if "SR650" in row.system:
                assert row.factor == pytest.approx(1.0)

    def test_amd_wins_every_benchmark(self, rows):
        for row in rows:
            if "SR645" in row.system:
                assert row.factor > 1.3

    def test_power_factor_largest_int_next_fp_smallest(self, rows):
        amd = {row.benchmark: row.factor for row in rows if "SR645" in row.system}
        assert amd["power_ssj2008"] > amd["cpu2017_fp_rate"]
        assert amd["cpu2017_int_rate"] > amd["cpu2017_fp_rate"]

    def test_factors_in_paper_ballpark(self, rows):
        amd = {row.benchmark: row.factor for row in rows if "SR645" in row.system}
        assert amd["cpu2017_int_rate"] == pytest.approx(2.03, abs=0.3)
        assert amd["cpu2017_fp_rate"] == pytest.approx(1.53, abs=0.25)
        assert amd["power_ssj2008"] == pytest.approx(2.09, rel=0.35)

    def test_table1_frame(self):
        frame = table1_frame()
        assert len(frame) == 6
        assert "paper_factor" in frame


class TestReport:
    def test_build_report(self, run_frame):
        comparison = build_report(run_frame, include_table1=False)
        assert comparison.unfiltered_runs == len(run_frame)
        assert comparison.filtered_runs < comparison.unfiltered_runs
        assert len(comparison.findings) > 10
        text = comparison.to_text()
        assert "Filter pipeline" in text
        assert "Headline findings" in text

    def test_report_frames(self, run_frame):
        comparison = build_report(run_frame, include_table1=False)
        assert len(comparison.findings_frame()) == len(comparison.findings)
        assert len(comparison.filter_frame()) == 3

    def test_report_with_table1(self, run_frame):
        comparison = build_report(run_frame, include_table1=True)
        assert len(comparison.table1_rows) == 6
        assert len(comparison.table1_frame()) == 6

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            build_report(Frame())
