"""Engine equivalence: vectorized frame kernels vs the scalar reference.

The vectorized group-by/join kernels (``engine="vector"``) must reproduce
the Python reference path (``engine="python"``) exactly — same values, same
missing-value masks, same row and group order.  Hypothesis drives random
frames (all four column kinds, missing entries, NaN keys, duplicate and
colliding keys) through both engines; the explicit tests below pin the
documented missing-key semantics that both engines share.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.frame import Frame, join

settings.register_profile(
    "repro-engines", deadline=None, max_examples=80,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-engines")

#: Small value pools maximise key collisions (the interesting regime).
#: "a\x00" vs "a" pins exact Python string equality: NumPy fixed-width
#: unicode strips trailing NULs and would silently merge them.
_KEY_POOLS = {
    "str": st.one_of(st.none(), st.sampled_from(["a", "b", "c", "", "a\x00"])),
    "int": st.one_of(st.none(), st.integers(min_value=-2, max_value=2)),
    "float": st.one_of(
        st.none(),
        st.sampled_from([float("nan"), -0.0, 0.0, 1.5, -2.5]),
    ),
    "bool": st.one_of(st.none(), st.booleans()),
}

_VALUES = st.one_of(
    st.none(), st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
)

_AGG_SPEC = {
    "mean": ("v", "mean"), "total": ("v", "sum"), "lo": ("v", "min"),
    "hi": ("v", "max"), "sd": ("v", "std"), "med": ("v", "median"),
    "n": ("v", "count"), "rows": ("v", "size"), "head": ("v", "first"),
    "tail": ("v", "last"), "uniq": ("v", "nunique"),
}


@st.composite
def keyed_frames(draw, n_keys: int = 1):
    kinds = [draw(st.sampled_from(sorted(_KEY_POOLS))) for _ in range(n_keys)]
    n = draw(st.integers(min_value=0, max_value=30))
    data = {
        f"k{i}": [draw(_KEY_POOLS[kind]) for _ in range(n)]
        for i, kind in enumerate(kinds)
    }
    data["v"] = [draw(_VALUES) for _ in range(n)]
    return Frame.from_dict(data), [f"k{i}" for i in range(n_keys)]


def assert_frames_identical(a: Frame, b: Frame) -> None:
    assert a.columns == b.columns
    assert len(a) == len(b)
    assert a.equals(b)
    for name in a.columns:
        assert a[name].kind == b[name].kind
        assert np.array_equal(a[name].mask, b[name].mask)


class TestGroupByEquivalence:
    @given(keyed_frames())
    def test_single_key_identical(self, frame_and_keys):
        frame, keys = frame_and_keys
        vector = frame.groupby(keys, engine="vector")
        python = frame.groupby(keys, engine="python")
        assert vector.ngroups == python.ngroups
        for (vk, vf), (pk, pf) in zip(vector.groups(), python.groups()):
            assert vk == pk or (vk != vk and pk != pk)  # NaN-free keys here
            assert_frames_identical(vf, pf)
        assert_frames_identical(
            vector.agg(_AGG_SPEC), python.agg(_AGG_SPEC)
        )

    @given(keyed_frames(n_keys=2))
    def test_multi_key_identical(self, frame_and_keys):
        frame, keys = frame_and_keys
        assert_frames_identical(
            frame.groupby(keys, engine="vector").agg(_AGG_SPEC),
            frame.groupby(keys, engine="python").agg(_AGG_SPEC),
        )

    @given(keyed_frames())
    def test_apply_identical(self, frame_and_keys):
        frame, keys = frame_and_keys
        fn = lambda sub: {"rows": len(sub), "m": sub["v"].mean()}  # noqa: E731
        assert_frames_identical(
            frame.groupby(keys, engine="vector").apply(fn),
            frame.groupby(keys, engine="python").apply(fn),
        )


@st.composite
def joinable_frames(draw, n_keys: int = 1):
    kinds = [draw(st.sampled_from(sorted(_KEY_POOLS))) for _ in range(n_keys)]

    def one(side: str):
        n = draw(st.integers(min_value=0, max_value=20))
        data = {
            f"k{i}": [draw(_KEY_POOLS[kind]) for _ in range(n)]
            for i, kind in enumerate(kinds)
        }
        data[side] = [draw(_VALUES) for _ in range(n)]
        data["shared"] = [draw(_VALUES) for _ in range(n)]
        return Frame.from_dict(data)

    return one("lhs"), one("rhs"), [f"k{i}" for i in range(n_keys)]


class TestJoinEquivalence:
    @given(joinable_frames(), st.sampled_from(["inner", "left", "outer"]))
    def test_single_key_identical(self, frames, how):
        left, right, keys = frames
        assert_frames_identical(
            join(left, right, on=keys, how=how, engine="vector"),
            join(left, right, on=keys, how=how, engine="python"),
        )

    @given(joinable_frames(n_keys=2), st.sampled_from(["inner", "left", "outer"]))
    def test_multi_key_identical(self, frames, how):
        left, right, keys = frames
        assert_frames_identical(
            join(left, right, on=keys, how=how, engine="vector"),
            join(left, right, on=keys, how=how, engine="python"),
        )

    def test_trailing_nul_strings_stay_distinct(self):
        # Exact Python string equality in both engines: 'a' and 'a\x00' are
        # different keys, however NumPy's unicode storage feels about it.
        frame = Frame.from_dict({"k": ["a", "a\x00"], "v": [1.0, 2.0]})
        for engine in ("vector", "python"):
            assert frame.groupby("k", engine=engine).ngroups == 2
        right = Frame.from_dict({"k": ["a\x00"], "b": [10.0]})
        for engine in ("vector", "python"):
            matched = join(frame, right, on="k", engine=engine)
            assert matched["v"].to_list() == [2.0]

    def test_unmasked_nan_value_columns_identical(self):
        # Unmasked NaN (computed, not missing) in a float *value* column:
        # join output re-masks it in both engines — the reference engine
        # rebuilds columns through from_values, where NaN means missing.
        from repro.frame import Column

        left = Frame(
            {
                "k": Column.from_values([1, 2]),
                "v": Column(
                    np.array([1.0, float("nan")]), np.zeros(2, dtype=bool), "float"
                ),
            }
        )
        right = Frame.from_dict({"k": [1, 2], "b": [10.0, 20.0]})
        vector = join(left, right, on="k", engine="vector")
        python = join(left, right, on="k", engine="python")
        assert_frames_identical(vector, python)
        assert vector["v"].to_list() == [1.0, None]

    def test_zero_match_join_preserves_kinds(self):
        # Empty outputs must keep the input column kinds in both engines
        # (list inference would degrade empty columns to "float").
        left = Frame.from_dict({"k": [1], "s": ["x"]})
        right = Frame.from_dict({"k": [2], "b": [1.0]})
        for engine in ("vector", "python"):
            result = join(left, right, on="k", engine=engine)
            assert len(result) == 0
            assert [result[c].kind for c in result.columns] == ["int", "str", "float"]

    @given(st.sampled_from(["inner", "left", "outer"]))
    def test_mixed_kind_keys_fall_back_identically(self, how):
        # int vs str keys: Python equality semantics — the vector engine
        # must delegate rather than invent its own comparison rules.
        left = Frame.from_dict({"k": [1, 2, None], "a": [1.0, 2.0, 3.0]})
        right = Frame.from_dict({"k": ["1", "2", None], "b": [10.0, 20.0, 30.0]})
        assert_frames_identical(
            join(left, right, on="k", how=how, engine="vector"),
            join(left, right, on="k", how=how, engine="python"),
        )


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        frame = Frame.from_dict({"k": [1], "v": [1.0]})
        with pytest.raises(FrameError):
            frame.groupby("k", engine="cuda")
        with pytest.raises(FrameError):
            join(frame, frame, on="k", engine="cuda")

    def test_env_var_selects_reference_engine(self, monkeypatch):
        frame = Frame.from_dict({"k": [1, 1, 2], "v": [1.0, 2.0, 3.0]})
        monkeypatch.setenv("REPRO_FRAME_ENGINE", "python")
        assert frame.groupby("k").engine == "python"
        monkeypatch.delenv("REPRO_FRAME_ENGINE")
        assert frame.groupby("k").engine == "vector"
