"""Atomic JSONL appends: helpers + cross-process no-torn-lines guarantees."""

import json
import multiprocessing
import os

import pytest

from repro.io.jsonl import append_jsonl, dumps_line, read_jsonl
from repro.obs.trace import JsonlSink


def test_dumps_line_is_one_complete_line():
    line = dumps_line({"b": 1, "a": "x"})
    assert line.endswith("\n")
    assert "\n" not in line[:-1]
    assert json.loads(line) == {"a": "x", "b": 1}
    # canonical: keys sorted so identical records are byte-identical
    assert line == '{"a": "x", "b": 1}\n'


def test_append_and_read_roundtrip(tmp_path):
    path = tmp_path / "log.jsonl"
    assert append_jsonl(path, [{"i": 0}, {"i": 1}]) == 2
    assert append_jsonl(path, []) == 0
    assert append_jsonl(path, [{"i": 2}]) == 1
    assert read_jsonl(path) == [{"i": 0}, {"i": 1}, {"i": 2}]


def test_read_jsonl_missing_file_is_empty(tmp_path):
    assert read_jsonl(tmp_path / "absent.jsonl") == []


def test_read_jsonl_skips_torn_tail_and_blanks(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"ok": 1}\n\n{"torn": ', encoding="utf-8")
    assert read_jsonl(path) == [{"ok": 1}]


def test_append_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "log.jsonl"
    append_jsonl(path, [{"x": 1}])
    assert read_jsonl(path) == [{"x": 1}]


def _hammer_append(path, writer, count):
    for i in range(count):
        append_jsonl(path, [{"writer": writer, "i": i, "pad": "x" * 200}])


def _hammer_sink(path, writer, count):
    sink = JsonlSink(path)
    for i in range(count):
        sink.emit({"writer": writer, "i": i, "pad": "y" * 200})
    sink.close()


@pytest.mark.parametrize("target", [_hammer_append, _hammer_sink])
def test_concurrent_process_writers_never_tear_lines(tmp_path, target):
    """4 processes x 200 events into one file: every line parses, none lost.

    This is the contract multi-worker campaigns lean on: ``shards.jsonl``,
    ``ledger.jsonl`` and ``events.jsonl`` are all appended by concurrent
    worker processes, and latest-wins readers only work if concurrent
    appends land as whole lines.
    """
    path = tmp_path / "events.jsonl"
    n_writers, per_writer = 4, 200
    procs = [
        multiprocessing.Process(target=target, args=(path, w, per_writer))
        for w in range(n_writers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    raw_lines = path.read_text(encoding="utf-8").splitlines()
    assert len(raw_lines) == n_writers * per_writer
    seen = set()
    for line in raw_lines:
        record = json.loads(line)  # any torn/interleaved line raises here
        seen.add((record["writer"], record["i"]))
    assert seen == {(w, i) for w in range(n_writers) for i in range(per_writer)}


def test_jsonl_sink_reopens_after_close(tmp_path):
    path = tmp_path / "sink.jsonl"
    sink = JsonlSink(path)
    sink.emit({"a": 1})
    sink.close()
    sink.emit({"a": 2})
    sink.close()
    assert [r["a"] for r in read_jsonl(path)] == [1, 2]


def test_campaign_store_appends_are_single_writes(tmp_path, monkeypatch):
    """CampaignStore's record paths all route through append_jsonl."""
    from repro.campaign.store import CampaignStore

    calls = []
    real = append_jsonl

    def spy(path, records):
        records = list(records)
        calls.append((os.path.basename(str(path)), len(records)))
        return real(path, records)

    monkeypatch.setattr("repro.campaign.store.append_jsonl", spy)
    store = CampaignStore(tmp_path / "store")
    store.record_shard({"index": 0, "status": "complete", "n_rows": 4})
    store.record_lease({"index": 1, "worker": "w0", "pid": 123, "deadline": 0.0})
    store.record_event("campaign_start", n_units=8)
    assert calls == [("shards.jsonl", 1), ("shards.jsonl", 1), ("events.jsonl", 1)]
    assert store.shard_entries().keys() == {0}  # lease filtered out
    assert store.lease_entries().keys() == {1}


def test_read_jsonl_report_counts_midfile_corruption(tmp_path):
    from repro.io.jsonl import read_jsonl_report

    path = tmp_path / "log.jsonl"
    path.write_text(
        '{"ok": 1}\ngarbage not json\n[1, 2]\n{"ok": 2}\n', encoding="utf-8"
    )
    report = read_jsonl_report(path)
    assert report.records == [{"ok": 1}, {"ok": 2}]
    # Both the unparseable line and the non-object line are corruption —
    # neither is the torn tail a crash legitimately leaves behind.
    assert report.corrupt == 2 and not report.torn_tail
    assert report.skipped == 2
    # read_jsonl stays the tolerant thin wrapper.
    assert read_jsonl(path) == [{"ok": 1}, {"ok": 2}]


def test_read_jsonl_report_torn_tail_is_not_corruption(tmp_path):
    from repro.io.jsonl import read_jsonl_report

    path = tmp_path / "log.jsonl"
    path.write_text('{"ok": 1}\n{"torn": ', encoding="utf-8")
    report = read_jsonl_report(path)
    assert report.records == [{"ok": 1}]
    assert report.torn_tail and report.corrupt == 0
    assert report.skipped == 1


def test_read_jsonl_report_clean_and_missing(tmp_path):
    from repro.io.jsonl import read_jsonl_report

    path = tmp_path / "log.jsonl"
    append_jsonl(path, [{"i": 0}])
    report = read_jsonl_report(path)
    assert report.records == [{"i": 0}]
    assert report.corrupt == 0 and not report.torn_tail
    missing = read_jsonl_report(tmp_path / "absent.jsonl")
    assert missing.records == [] and missing.corrupt == 0


def test_partial_write_fault_tears_the_append(tmp_path):
    from repro.faults import FaultPlan, FaultRule, clear_fault_plan, install_fault_plan
    from repro.io.jsonl import read_jsonl_report

    path = tmp_path / "ledger.jsonl"
    append_jsonl(path, [{"i": 0}])
    install_fault_plan(
        FaultPlan(
            [
                FaultRule(
                    site="jsonl.append",
                    kind="partial_write",
                    nth=1,
                    where="ledger",
                    fraction=0.5,
                )
            ]
        )
    )
    try:
        append_jsonl(path, [{"i": 1, "pad": "x" * 64}])
    finally:
        clear_fault_plan()
    report = read_jsonl_report(path)
    assert report.records == [{"i": 0}]
    assert report.torn_tail  # the truncated append is the (benign) tail
