"""Tests for the SPECpower_ssj2008 benchmark simulator."""

import pytest

from repro.errors import SimulationError
from repro.simulator import (
    DEFAULT_MIX,
    PowerAnalyzer,
    RunDirector,
    SimulationOptions,
    TransactionMix,
    TransactionType,
    WorkloadEngine,
    calibrate,
)
from repro.simulator.result import LoadLevelResult, RunResult


class TestTransactionMix:
    def test_default_weights_sum_to_one(self):
        assert sum(DEFAULT_MIX.weights.values()) == pytest.approx(1.0, abs=0.02)

    def test_six_transaction_types(self):
        assert len(DEFAULT_MIX.types) == 6

    def test_mean_cost_positive(self):
        assert 0.5 < DEFAULT_MIX.mean_cost() < 1.5

    def test_sample_respects_mix(self, rng):
        samples = DEFAULT_MIX.sample(rng, 5000)
        share_new_order = samples.count(TransactionType.NEW_ORDER) / len(samples)
        assert share_new_order == pytest.approx(1 / 3, abs=0.05)

    def test_sample_negative_count_rejected(self, rng):
        with pytest.raises(SimulationError):
            DEFAULT_MIX.sample(rng, -1)

    def test_incomplete_mix_rejected(self):
        weights = {t: 1.0 / 5 for t in list(TransactionType)[:5]}
        with pytest.raises(SimulationError):
            TransactionMix(weights=weights)

    def test_nonpositive_cost_rejected(self):
        costs = dict(DEFAULT_MIX.costs)
        costs[TransactionType.PAYMENT] = 0.0
        with pytest.raises(SimulationError):
            TransactionMix(costs=costs)


class TestWorkloadEngine:
    @pytest.fixture()
    def engine(self):
        return WorkloadEngine(max_rate_ops=1_000_000, workers=64)

    def test_analytic_interval_hits_target(self, engine):
        stats = engine.run_interval(0.7, duration_s=240)
        assert stats.achieved_rate_ops == pytest.approx(0.7 * 1_000_000)
        assert stats.actual_load == pytest.approx(1.0)

    def test_zero_load_interval(self, engine):
        stats = engine.run_interval(0.0)
        assert stats.achieved_rate_ops == 0.0
        assert stats.busy_fraction == 0.0

    def test_event_mode_close_to_target(self, engine, rng):
        stats = engine.run_interval(0.5, duration_s=120, rng=rng, fidelity="event")
        assert stats.achieved_rate_ops == pytest.approx(0.5 * 1_000_000, rel=0.15)
        assert 0.2 < stats.busy_fraction < 0.9

    def test_event_mode_busy_fraction_grows_with_load(self, engine, rng):
        low = engine.run_interval(0.2, duration_s=60, rng=rng, fidelity="event")
        high = engine.run_interval(0.9, duration_s=60, rng=rng, fidelity="event")
        assert high.busy_fraction > low.busy_fraction

    def test_response_time_grows_with_load(self, engine):
        assert (
            engine.run_interval(0.9).mean_response_time_s
            > engine.run_interval(0.2).mean_response_time_s
        )

    def test_invalid_load_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.run_interval(1.5)

    def test_invalid_fidelity_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.run_interval(0.5, fidelity="quantum")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadEngine(max_rate_ops=0, workers=4)
        with pytest.raises(SimulationError):
            WorkloadEngine(max_rate_ops=100, workers=0)


class TestCalibration:
    def test_calibrated_rate_close_to_truth(self, rng):
        result = calibrate(1_000_000, rng=rng, noise_sigma=0.01)
        assert result.calibrated_rate_ops == pytest.approx(1_000_000, rel=0.05)
        assert len(result.interval_rates_ops) == 3

    def test_noise_free_calibration_exact(self):
        result = calibrate(500_000, noise_sigma=0.0)
        assert result.calibrated_rate_ops == pytest.approx(500_000)
        assert result.spread < 0.02

    def test_first_interval_warmup_penalty(self):
        result = calibrate(500_000, noise_sigma=0.0)
        assert result.interval_rates_ops[0] < result.interval_rates_ops[1]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(SimulationError):
            calibrate(0)
        with pytest.raises(SimulationError):
            calibrate(100, intervals=1)


class TestPowerAnalyzer:
    def test_measurement_close_to_truth(self, rng):
        analyzer = PowerAnalyzer(rng=rng)
        measured, samples = analyzer.measure_power(500.0, duration_s=240)
        assert measured == pytest.approx(500.0, rel=0.02)
        assert samples == 240

    def test_noise_free_analyzer_exact(self):
        analyzer = PowerAnalyzer(accuracy=0.0, sample_noise_w=0.0)
        measured, _ = analyzer.measure_power(321.0)
        assert measured == pytest.approx(321.0)

    def test_interval_packaging(self, rng):
        analyzer = PowerAnalyzer(rng=rng)
        interval = analyzer.measure_interval(0.7, 0.69, 700_000, 400.0)
        assert interval.target_load == 0.7
        assert interval.ssj_ops == 700_000
        assert interval.average_power_w > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            PowerAnalyzer(accuracy=0.2)
        with pytest.raises(SimulationError):
            PowerAnalyzer().measure_power(-1.0)


class TestRunDirector:
    def test_run_produces_full_level_set(self, sample_fleet):
        director = RunDirector()
        result = director.run(sample_fleet.systems[0])
        assert len(result.levels) == 11
        assert result.full_load.target_load == 1.0
        assert result.active_idle.is_active_idle

    def test_run_reproducible_for_same_plan(self, sample_fleet):
        director = RunDirector()
        plan = sample_fleet.systems[1]
        a, b = director.run(plan), director.run(plan)
        assert a.overall_efficiency == pytest.approx(b.overall_efficiency)
        assert a.full_load.average_power_w == pytest.approx(b.full_load.average_power_w)

    def test_power_decreases_with_load(self, sample_results):
        for result in sample_results:
            levels = result.load_levels
            assert levels[0].average_power_w >= levels[-1].average_power_w
            assert result.active_idle.average_power_w < levels[0].average_power_w

    def test_ops_scale_with_target_load(self, sample_results):
        for result in sample_results:
            full = result.full_load
            half = result.level_at(0.5)
            assert half.ssj_ops == pytest.approx(0.5 * full.ssj_ops, rel=0.1)

    def test_multi_node_scales_power_and_ops(self, catalog):
        from dataclasses import replace

        from repro.market import FleetSampler

        fleet = FleetSampler(total_parsed_runs=40, catalog=catalog).sample(seed=5)
        plan = fleet.analysable()[0]
        director = RunDirector(options=SimulationOptions(measurement_noise=False))
        single = director.run(plan)
        double = director.run(replace(plan, nodes=2))
        assert double.full_load.ssj_ops == pytest.approx(2 * single.full_load.ssj_ops, rel=0.01)
        assert double.full_load.average_power_w == pytest.approx(
            2 * single.full_load.average_power_w, rel=0.01
        )

    def test_noise_free_mode_matches_model(self, sample_fleet, catalog):
        director = RunDirector(options=SimulationOptions(measurement_noise=False))
        plan = sample_fleet.analysable()[0]
        result = director.run(plan)
        from repro.powermodel import ServerPowerModel

        model = ServerPowerModel(director.build_configuration(plan))
        assert result.full_load.average_power_w == pytest.approx(
            model.node_power_w(1.0), rel=0.02
        )

    def test_overall_efficiency_definition(self, sample_results):
        for result in sample_results:
            total_ops = sum(level.ssj_ops for level in result.levels)
            total_power = sum(level.average_power_w for level in result.levels)
            assert result.overall_efficiency == pytest.approx(total_ops / total_power)

    def test_summary_fields(self, sample_results):
        summary = sample_results[0].summary()
        assert {"run_id", "cpu", "vendor", "overall_ssj_ops_per_watt"} <= set(summary)

    def test_level_at_unknown_rejected(self, sample_results):
        with pytest.raises(SimulationError):
            sample_results[0].level_at(0.55)

    def test_invalid_options_rejected(self):
        with pytest.raises(SimulationError):
            SimulationOptions(interval_duration_s=0)
        with pytest.raises(SimulationError):
            SimulationOptions(fidelity="bogus")


class TestRunResultValidation:
    def test_load_level_result_bounds(self):
        with pytest.raises(SimulationError):
            LoadLevelResult(target_load=1.5, actual_load=1.0, ssj_ops=1, average_power_w=1)
        with pytest.raises(SimulationError):
            LoadLevelResult(target_load=0.5, actual_load=0.5, ssj_ops=-1, average_power_w=1)

    def test_run_result_requires_levels(self, sample_results):
        template = sample_results[0]
        with pytest.raises(SimulationError):
            RunResult(
                plan=template.plan,
                cpu=template.cpu,
                configuration=template.configuration,
                levels=(),
                calibrated_ops=1.0,
            )
