"""Tests for the plotting substrate (scales, SVG, charts, ASCII)."""

import pytest

from repro.errors import PlotError
from repro.plotting import (
    BarChart,
    BoxChart,
    BoxSeries,
    ChartTheme,
    Extent,
    LineChart,
    LinearScale,
    ScatterChart,
    Series,
    StackedAreaChart,
    SVGDocument,
    ascii_histogram,
    ascii_scatter,
    ascii_shard_strip,
    ascii_sparkline,
    nice_ticks,
)
from repro.stats import box_stats, histogram


class TestScale:
    def test_extent_of_values(self):
        extent = Extent.of([3.0, 1.0, None, 2.0])
        assert extent.low == 1.0 and extent.high == 3.0

    def test_extent_of_empty_rejected(self):
        with pytest.raises(PlotError):
            Extent.of([None])

    def test_extent_invalid_order_rejected(self):
        with pytest.raises(PlotError):
            Extent(2.0, 1.0)

    def test_extent_expand_and_include(self):
        extent = Extent(0.0, 10.0).expanded(0.1)
        assert extent.low == pytest.approx(-1.0)
        assert extent.high == pytest.approx(11.0)
        assert Extent(0.0, 1.0).include(5.0).high == 5.0

    def test_nice_ticks_cover_domain(self):
        ticks = nice_ticks(Extent(2005.0, 2024.0), 5)
        assert ticks[0] >= 2005.0 and ticks[-1] <= 2024.0
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_nice_ticks_degenerate_domain(self):
        assert nice_ticks(Extent(5.0, 5.0)) == [5.0]

    def test_linear_scale_maps_endpoints(self):
        scale = LinearScale(Extent(0.0, 10.0), 0.0, 100.0)
        assert scale(0.0) == 0.0
        assert scale(10.0) == 100.0
        assert scale(5.0) == 50.0

    def test_linear_scale_invert(self):
        scale = LinearScale(Extent(0.0, 10.0), 100.0, 200.0)
        assert scale.invert(scale(3.3)) == pytest.approx(3.3)


class TestSVG:
    def test_document_structure(self):
        doc = SVGDocument(100, 50)
        doc.circle(10, 10, 2, fill="#ff0000")
        doc.text(5, 5, "hello & <world>")
        text = doc.to_string()
        assert text.startswith("<?xml")
        assert "<svg" in text and "</svg>" in text
        assert "hello &amp; &lt;world&gt;" in text

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(PlotError):
            SVGDocument(0, 10)

    def test_polyline_requires_two_points(self):
        doc = SVGDocument(10, 10)
        with pytest.raises(PlotError):
            doc.polyline([(1, 1)])

    def test_save(self, tmp_path):
        doc = SVGDocument(10, 10)
        path = tmp_path / "sub" / "chart.svg"
        doc.save(path)
        assert path.exists()
        assert "<svg" in path.read_text()


class TestCharts:
    def test_scatter_contains_points_and_legend(self):
        chart = ScatterChart(
            [Series("Intel", [2007, 2010], [200, 250]), Series("AMD", [2019], [300])],
            title="Power", x_label="Year", y_label="W",
        )
        text = chart.render().to_string()
        assert text.count("<circle") >= 3
        assert "Intel" in text and "AMD" in text and "Power" in text

    def test_scatter_requires_series(self):
        with pytest.raises(PlotError):
            ScatterChart([])

    def test_scatter_all_nan_rejected(self):
        with pytest.raises(PlotError):
            ScatterChart([Series("x", [1.0], [float("nan")])]).render()

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(PlotError):
            Series("x", [1, 2], [1])

    def test_line_chart_has_polyline(self):
        chart = LineChart([Series("trend", [1, 2, 3], [1, 2, 3])])
        assert "<polyline" in chart.render().to_string()

    def test_box_chart_reference_line(self):
        boxes = [box_stats([0.9, 1.0, 1.1]), box_stats([1.0, 1.05, 1.2])]
        chart = BoxChart(
            [BoxSeries("70%", [2020, 2021], boxes)], reference_line=1.0, title="rel eff"
        )
        text = chart.render().to_string()
        assert "stroke-dasharray" in text  # the reference line
        assert text.count("<rect") >= 2  # one box per year

    def test_box_chart_empty_boxes_rejected(self):
        with pytest.raises(PlotError):
            BoxChart([BoxSeries("x", [2020], [box_stats([])])]).render()

    def test_stacked_area_normalises_to_percent(self):
        chart = StackedAreaChart(
            [2007, 2008],
            [Series("Windows", [2007, 2008], [9, 5]), Series("Linux", [2007, 2008], [1, 5])],
        )
        stacked = chart._stacked()
        assert stacked[-1] == pytest.approx([100.0, 100.0])
        assert "<polygon" in chart.render().to_string()

    def test_stacked_area_length_mismatch_rejected(self):
        with pytest.raises(PlotError):
            StackedAreaChart([2007], [Series("a", [2007, 2008], [1, 2])])

    def test_bar_chart(self):
        chart = BarChart([2007, 2008, 2009], [10, 20, 5], title="counts")
        assert chart.render().to_string().count("<rect") >= 3

    def test_bar_chart_mismatched_lengths_rejected(self):
        with pytest.raises(PlotError):
            BarChart([1, 2], [1])

    def test_chart_save(self, tmp_path):
        path = tmp_path / "scatter.svg"
        ScatterChart([Series("s", [1], [1])]).save(path)
        assert path.exists()

    def test_theme_colors_cycle(self):
        theme = ChartTheme()
        assert theme.color(0) != theme.color(1)
        assert theme.color(0) == theme.color(len(theme.palette))


class TestAscii:
    def test_scatter_renders_markers(self):
        text = ascii_scatter([1, 2, 3], [1, 4, 9], width=40, height=10, title="t")
        assert "t" in text
        assert "o" in text

    def test_scatter_empty(self):
        assert "(no data)" in ascii_scatter([], [])

    def test_scatter_too_small_rejected(self):
        with pytest.raises(PlotError):
            ascii_scatter([1], [1], width=5, height=2)

    def test_histogram_bars(self):
        text = ascii_histogram(histogram([1, 1, 2, 3], bins=3), title="h")
        assert "#" in text and "h" in text


class TestSparkline:
    def test_eight_level_ramp(self):
        text = ascii_sparkline(list(range(8)), width=8)
        assert text == "▁▂▃▄▅▆▇█"

    def test_trailing_window_keeps_recent_points(self):
        # Only the last `width` points count: the window is all-1.0, and with
        # the 0.0 head cropped out it renders as a constant (mid-height).
        values = [0.0] * 50 + [1.0] * 10
        assert ascii_sparkline(values, width=10) == "▅" * 10
        assert ascii_sparkline(values, width=11) == "▁" + "█" * 10

    def test_none_and_nan_render_as_spaces(self):
        text = ascii_sparkline([0.0, None, float("nan"), 1.0], width=10)
        assert text == "▁  █"

    def test_empty_and_all_missing(self):
        assert ascii_sparkline([]) == "(no data)"
        assert ascii_sparkline([None, float("nan")]) == "(no data)"

    def test_single_point_and_constant_render_mid_height(self):
        assert ascii_sparkline([5.0]) == "▅"
        assert ascii_sparkline([3.0, 3.0, 3.0]) == "▅▅▅"

    def test_pinned_scale_is_stable_across_frames(self):
        first = ascii_sparkline([1.0, 2.0], low=0.0, high=10.0)
        second = ascii_sparkline([1.0, 2.0, 9.0], low=0.0, high=10.0)
        assert second.startswith(first)

    def test_width_validation(self):
        with pytest.raises(PlotError):
            ascii_sparkline([1.0], width=0)


class TestShardStrip:
    def test_one_glyph_per_shard(self):
        text = ascii_shard_strip(["complete", "partial", "pending", "weird"])
        assert text == "█▒·?"

    def test_empty(self):
        assert ascii_shard_strip([]) == "(no shards)"

    def test_compression_reports_worst_state_per_cell(self):
        # 100 shards into 10 cells: any pending shard must keep its cell "·".
        states = ["complete"] * 100
        states[55] = "pending"
        text = ascii_shard_strip(states, width=10)
        assert len(text) == 10
        assert text.count("·") == 1 and text.count("█") == 9

    def test_width_validation(self):
        with pytest.raises(PlotError):
            ascii_shard_strip(["complete"], width=0)
