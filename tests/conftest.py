"""Shared fixtures.

A small synthetic corpus is generated once per session and reused by the
parser, core and integration tests; keeping it at ~160 clean runs makes the
whole suite run in seconds while still covering every year and both vendors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import analyze, generate_corpus, load_dataset
from repro.core.filters import apply_paper_filters
from repro.frame import Frame
from repro.market import FleetSampler, default_catalog
from repro.simulator import RunDirector, SimulationOptions

CORPUS_RUNS = 160
CORPUS_SEED = 424242


@pytest.fixture(scope="session")
def corpus_dir(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("corpus")
    generate_corpus(directory, total_parsed_runs=CORPUS_RUNS, seed=CORPUS_SEED)
    return str(directory)


@pytest.fixture(scope="session")
def run_frame(corpus_dir) -> Frame:
    """Parsed + derived run table of the session corpus."""
    return load_dataset(corpus_dir)


@pytest.fixture(scope="session")
def filtered_frame(run_frame) -> Frame:
    filtered, _ = apply_paper_filters(run_frame)
    return filtered


@pytest.fixture(scope="session")
def analysis_result(run_frame):
    return analyze(run_frame, include_table1=False, include_figures=False)


@pytest.fixture(scope="session")
def catalog():
    return default_catalog()


@pytest.fixture(scope="session")
def sample_fleet(catalog):
    return FleetSampler(total_parsed_runs=60, catalog=catalog).sample(seed=7)


@pytest.fixture(scope="session")
def sample_results(sample_fleet):
    """A handful of simulated runs covering several eras and both vendors."""
    director = RunDirector(options=SimulationOptions())
    return [director.run(plan) for plan in sample_fleet.systems[:20]]


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def tiny_frame() -> Frame:
    """A small hand-written frame used by the frame/stats unit tests."""
    return Frame.from_dict(
        {
            "year": [2007, 2008, 2008, 2017, 2020, 2023],
            "vendor": ["Intel", "Intel", "AMD", "Intel", "AMD", "AMD"],
            "power": [210.0, 190.0, None, 350.0, 280.0, 720.0],
            "sockets": [2, 2, 2, 2, 1, 2],
        }
    )
