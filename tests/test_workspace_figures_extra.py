"""Additional coverage: figure CSV contents, analysis result persistence and
the report writer's handling of one complete paper-scale workflow step."""

import pytest

from repro.core import figure3, figure5
from repro.frame import read_csv
from repro.io import Workspace


class TestFigureCsvRoundTrip:
    def test_figure3_csv_matches_data(self, filtered_frame, tmp_path):
        artifact = figure3(filtered_frame)
        written = artifact.save(tmp_path)
        csv_path = [p for p in written if p.suffix == ".csv"][0]
        loaded = read_csv(csv_path)
        assert len(loaded) == len(artifact.data)
        assert set(loaded.columns) == set(artifact.data.columns)
        original = sorted(v for v in artifact.data["overall_efficiency"].to_list() if v is not None)
        restored = sorted(v for v in loaded["overall_efficiency"].to_list() if v is not None)
        assert restored == pytest.approx(original)

    def test_figure5_scale_is_percentage_in_chart_only(self, filtered_frame):
        artifact = figure5(filtered_frame)
        # The CSV keeps the raw fraction; only the chart multiplies by 100.
        values = [v for v in artifact.data["idle_fraction"].to_list() if v is not None]
        assert all(0 < v < 1.0 for v in values)


class TestWorkspaceIntegration:
    def test_full_workflow_into_workspace(self, corpus_dir, run_frame, tmp_path):
        workspace = Workspace.create(tmp_path / "ws")
        run_frame.to_csv(workspace.dataset_csv)
        assert workspace.dataset_csv.exists()
        reloaded = read_csv(workspace.dataset_csv)
        assert len(reloaded) == len(run_frame)
        assert "overall_efficiency" in reloaded
        # The reloaded frame supports the same analysis entry points.
        from repro.core import apply_paper_filters

        filtered, report = apply_paper_filters(reloaded)
        assert report.final == len(filtered)
