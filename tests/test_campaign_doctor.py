"""``campaign doctor``: every issue category, repair semantics, CLI exit codes."""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    Lease,
    doctor_store,
    resume_streaming,
    stream_campaign,
)
from repro.cli.main import main as cli_main
from repro.errors import CampaignError

FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def doctor_spec(name="doctor-test", seeds=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": ["EPYC 9654", "Xeon X5670"], "seed": list(seeds)},
        base=FAST_BASE,
    )


@pytest.fixture
def healthy_store(tmp_path):
    """A completed 2-shard streaming store and its result."""
    store_dir = tmp_path / "store"
    result = stream_campaign(doctor_spec(), store_dir, shard_size=2)
    assert result.is_complete
    return store_dir, result


class TestHealthyStore:
    def test_clean_store_reports_healthy(self, healthy_store):
        store_dir, _ = healthy_store
        report = doctor_store(store_dir)
        assert report.healthy and not report.unresolved
        assert "store is healthy" in report.describe()

    def test_not_a_store_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            doctor_store(tmp_path / "nothing-here")


class TestLogDamage:
    def test_corrupt_midfile_lines_found_and_repaired(self, healthy_store):
        store_dir, _ = healthy_store
        ledger = CampaignStore(store_dir).ledger_path
        lines = ledger.read_text(encoding="utf-8").splitlines(keepends=True)
        lines.insert(1, "this is not json\n")
        ledger.write_text("".join(lines), encoding="utf-8")

        report = doctor_store(store_dir)
        categories = [issue.category for issue in report.issues]
        assert categories == ["corrupt-lines"]
        assert report.unresolved and "--repair" in report.describe()

        repaired = doctor_store(store_dir, repair=True)
        assert not repaired.unresolved
        assert "atomic rewrite" in repaired.describe()
        assert doctor_store(store_dir).healthy

    def test_torn_tail_found_and_tidied(self, healthy_store):
        store_dir, _ = healthy_store
        events = CampaignStore(store_dir).events_path
        with open(events, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')

        report = doctor_store(store_dir)
        assert [issue.category for issue in report.issues] == ["torn-tail"]
        doctor_store(store_dir, repair=True)
        assert doctor_store(store_dir).healthy


class TestArtifactDamage:
    def test_missing_artifact_marked_damaged_and_reexecutes(self, healthy_store):
        store_dir, result = healthy_store
        store = CampaignStore(store_dir)
        key = store.shard_entries()[0]["artifact"]
        store.shard_store._path(key).unlink()
        store.shard_store.sidecar_path(key).unlink()

        report = doctor_store(store_dir)
        assert [issue.category for issue in report.issues] == ["missing-artifact"]

        doctor_store(store_dir, repair=True)
        entries = CampaignStore(store_dir).shard_entries()
        assert entries[0]["status"] == "damaged"
        healed = resume_streaming(store_dir)
        assert healed.is_complete
        assert healed.frame().equals(result.frame())
        assert doctor_store(store_dir).healthy

    def test_checksum_mismatch_detected_and_healed(self, healthy_store):
        store_dir, result = healthy_store
        store = CampaignStore(store_dir)
        key = store.shard_entries()[1]["artifact"]
        sidecar = store.shard_store.sidecar_path(key)
        data = sidecar.read_bytes()
        sidecar.write_bytes(data[: len(data) // 2])  # torn write / bit rot

        report = doctor_store(store_dir)
        assert [issue.category for issue in report.issues] == ["checksum-mismatch"]

        doctor_store(store_dir, repair=True)
        healed = resume_streaming(store_dir)
        assert healed.is_complete and healed.frame().equals(result.frame())
        assert doctor_store(store_dir).healthy

    def test_row_count_mismatch_is_unreadable_artifact(self, healthy_store):
        store_dir, _ = healthy_store
        store = CampaignStore(store_dir)
        entry = dict(store.shard_entries()[0])
        entry.pop("checksum", None)
        entry["n_rows"] = int(entry["n_rows"]) + 1  # record lies about the rows
        store.record_shard(entry)

        report = doctor_store(store_dir)
        assert [issue.category for issue in report.issues] == ["unreadable-artifact"]
        doctor_store(store_dir, repair=True)
        assert resume_streaming(store_dir).is_complete
        assert doctor_store(store_dir).healthy


class TestOrphans:
    def test_intact_orphan_is_a_note_not_an_issue(self, healthy_store):
        store_dir, result = healthy_store
        store = CampaignStore(store_dir)
        # Forget shard 0's result record: its artifact becomes an intact
        # orphan — exactly what a worker killed pre-record leaves behind.
        from repro.io.jsonl import dumps_line, read_jsonl

        records = [
            r for r in read_jsonl(store.shards_path)
            if r.get("kind") == "lease" or r.get("index") != 0
        ]
        store.shards_path.write_text(
            "".join(dumps_line(r) for r in records), encoding="utf-8"
        )

        report = doctor_store(store_dir)
        assert report.healthy
        assert any("adopt" in note for note in report.notes)
        # Repair leaves adoptable debris alone; resume adopts it for free.
        doctor_store(store_dir, repair=True)
        healed = resume_streaming(store_dir)
        assert healed.is_complete and healed.simulated == 0
        assert healed.frame().equals(result.frame())

    def test_corrupt_orphan_deleted_on_repair(self, healthy_store):
        store_dir, _ = healthy_store
        store = CampaignStore(store_dir)
        orphan_key = "f" * 64
        store.shard_store.put(orphan_key, {"columns": [], "n_rows": 0})
        sidecar = store.shard_store.sidecar_path(orphan_key)
        sidecar.write_bytes(b"\x00not an npz")

        report = doctor_store(store_dir)
        assert [issue.category for issue in report.issues] == ["corrupt-orphan"]
        doctor_store(store_dir, repair=True)
        assert orphan_key not in store.shard_store
        assert doctor_store(store_dir).healthy


class TestLeases:
    def test_stale_lease_found_and_released(self, tmp_path):
        store_dir = tmp_path / "store"
        stream_campaign(doctor_spec(), store_dir, shard_size=2, max_shards=1)
        store = CampaignStore(store_dir)
        now = time.time()
        store.record_lease(
            Lease(
                index=1, worker="ghost", pid=os.getpid(), ts=now - 60,
                deadline=now - 30,  # expired: a hung worker's abandoned claim
            ).to_record()
        )

        report = doctor_store(store_dir)
        assert [issue.category for issue in report.issues] == ["stale-lease"]
        assert "no heartbeat" in report.issues[0].detail

        doctor_store(store_dir, repair=True)
        assert doctor_store(store_dir).healthy
        assert resume_streaming(store_dir).is_complete

    def test_released_lease_is_not_stale(self, tmp_path):
        store_dir = tmp_path / "store"
        stream_campaign(doctor_spec(), store_dir, shard_size=2, max_shards=1)
        store = CampaignStore(store_dir)
        now = time.time()
        store.record_lease(
            Lease(index=1, worker="polite", pid=os.getpid(), ts=now, deadline=now)
            .to_record()
        )
        assert doctor_store(store_dir).healthy

    def test_lease_superseded_by_result_is_ignored(self, healthy_store):
        store_dir, _ = healthy_store
        store = CampaignStore(store_dir)
        now = time.time()
        store.record_lease(
            Lease(
                index=0, worker="done", pid=os.getpid(), ts=now - 60,
                deadline=now - 30,
            ).to_record()
        )
        assert doctor_store(store_dir).healthy  # the result record wins


class TestQuarantineNote:
    def test_quarantined_units_surface_as_note(self, healthy_store):
        store_dir, _ = healthy_store
        store = CampaignStore(store_dir)
        unit = doctor_spec().expand()[0]
        store.record_quarantine(unit, "InjectedFault: poison", attempts=3)
        report = doctor_store(store_dir)
        assert report.healthy
        assert any("quarantined" in note for note in report.notes)


class TestDoctorCli:
    def test_cli_healthy_exit_zero(self, healthy_store, capsys):
        store_dir, _ = healthy_store
        assert cli_main(["campaign", "doctor", "--store", str(store_dir)]) == 0
        assert "store is healthy" in capsys.readouterr().out

    def test_cli_unresolved_exit_one_then_repair_exit_zero(
        self, healthy_store, capsys
    ):
        store_dir, _ = healthy_store
        ledger = CampaignStore(store_dir).ledger_path
        lines = ledger.read_text(encoding="utf-8").splitlines(keepends=True)
        lines.insert(1, "garbage\n")
        ledger.write_text("".join(lines), encoding="utf-8")

        assert cli_main(["campaign", "doctor", "--store", str(store_dir)]) == 1
        out = capsys.readouterr().out
        assert "corrupt-lines" in out and "--repair" in out

        assert (
            cli_main(["campaign", "doctor", "--store", str(store_dir), "--repair"])
            == 0
        )
        assert "atomic rewrite" in capsys.readouterr().out

    def test_cli_missing_store_is_operator_error(self, tmp_path, capsys):
        code = cli_main(["campaign", "doctor", "--store", str(tmp_path / "nope")])
        assert code == 2
        assert capsys.readouterr().err.strip()
