"""End-to-end tests: public API, CLI and full-pipeline integration."""

import pytest

from repro import Frame, analyze, parse_corpus, quick_dataset
from repro.cli.main import build_parser, main


class TestApi:
    def test_generate_and_load(self, corpus_dir, run_frame):
        # corpus_dir / run_frame fixtures already exercise generate + load;
        # check the invariants the paper relies on.
        assert isinstance(run_frame, Frame)
        assert len(run_frame) > 100
        assert "overall_efficiency" in run_frame

    def test_parse_corpus_report(self, corpus_dir):
        report = parse_corpus(corpus_dir)
        assert report.parsed_count > 0
        assert len(report.rejected) > 0

    def test_quick_dataset_keeps_files_when_directory_given(self, tmp_path):
        frame = quick_dataset(n_runs=40, seed=3, directory=tmp_path / "kept")
        assert len(frame) > 0
        assert list((tmp_path / "kept").glob("*.txt"))

    def test_analyze_result(self, analysis_result, run_frame):
        assert analysis_result.unfiltered.shape[0] == len(run_frame)
        assert len(analysis_result.filtered) < len(run_frame)
        assert "Reproduction report" in analysis_result.summary()
        assert analysis_result.era_comparisons

    def test_analyze_with_figures(self, run_frame, tmp_path):
        result = analyze(run_frame, include_table1=False, include_figures=True)
        assert len(result.figures) == 6
        written = result.save_figures(tmp_path)
        assert len(written) >= 12  # at least one CSV and one SVG per figure
        assert all(path.exists() for path in written)

    def test_analyze_derives_when_needed(self, corpus_dir):
        report = parse_corpus(corpus_dir)
        raw = report.to_frame()  # no derived columns yet
        result = analyze(raw, include_table1=False)
        assert "overall_efficiency" in result.unfiltered


class TestDatasetFunnel:
    """The synthetic corpus must reproduce the paper's dataset structure."""

    def test_defective_files_rejected(self, corpus_dir):
        report = parse_corpus(corpus_dir)
        reasons = report.rejection_counts()
        # Every defect class injected by the generator is caught by the
        # validation layer.
        assert set(reasons) <= {
            "not_accepted", "ambiguous_date", "implausible_date", "ambiguous_cpu",
            "missing_node_count", "inconsistent_core_thread", "implausible_core_count",
        }
        assert reasons["not_accepted"] >= 1

    def test_filter_funnel_matches_fleet_plan(self, corpus_dir, run_frame):
        from repro.core import apply_paper_filters

        filtered, report = apply_paper_filters(run_frame)
        assert report.removed_by("non_intel_amd_cpu") >= 1
        assert report.removed_by("non_server_cpu") >= 1
        assert report.removed_by("multi_node_or_gt2_sockets") > 10
        assert len(filtered) > 0.5 * len(run_frame)

    def test_vendor_and_os_composition(self, run_frame):
        vendors = run_frame.value_counts("cpu_vendor")
        assert vendors["cpu_vendor"].to_list()[0] == "Intel"
        families = set(run_frame["os_family"].to_list())
        assert "Windows" in families and "Linux" in families


class TestCli:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "parse", "analyze", "figures", "table1"):
            assert command in text

    def test_generate_and_parse_commands(self, tmp_path, capsys):
        corpus = tmp_path / "cli_corpus"
        assert main(["generate", "--output", str(corpus), "--runs", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "report files" in out
        csv_path = tmp_path / "runs.csv"
        assert main(["parse", "--corpus", str(corpus), "--output", str(csv_path)]) == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_analyze_command(self, corpus_dir, capsys):
        assert main(["analyze", "--corpus", corpus_dir, "--no-table1"]) == 0
        out = capsys.readouterr().out
        assert "Headline findings" in out

    def test_figures_command(self, corpus_dir, tmp_path, capsys):
        assert main(["figures", "--corpus", corpus_dir, "--output", str(tmp_path / "figs")]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert any((tmp_path / "figs").glob("*.svg"))

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "power_ssj2008" in out
        assert "SR645" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
