"""Statistical sanity checks on the sampled fleet and the generated corpus.

These complement test_market.py: rather than checking the sampler's API,
they check distributional properties the analysis depends on (uniqueness of
run ids, plausible configurations, era-consistent software stacks).
"""

import re

import numpy as np
import pytest

from repro.market import FleetSampler, default_catalog


@pytest.fixture(scope="module")
def fleet():
    return FleetSampler(total_parsed_runs=240, catalog=default_catalog()).sample(seed=99)


class TestPlanDistributions:
    def test_run_ids_unique(self, fleet):
        run_ids = [plan.run_id for plan in fleet.systems]
        assert len(run_ids) == len(set(run_ids))

    def test_file_names_are_txt(self, fleet):
        assert all(plan.file_name.endswith(".txt") for plan in fleet.systems)

    def test_every_year_has_runs(self, fleet):
        years = {plan.hw_avail.year for plan in fleet.clean}
        assert set(range(2007, 2024)) <= years

    def test_memory_positive_and_plausible(self, fleet):
        for plan in fleet.systems:
            assert 2.0 <= plan.memory_gb <= 8192.0

    def test_sockets_and_nodes_positive(self, fleet):
        for plan in fleet.systems:
            assert plan.sockets >= 1 and plan.nodes >= 1

    def test_cpu_models_exist_in_catalog(self, fleet):
        catalog = default_catalog()
        for plan in fleet.systems:
            catalog.get(plan.cpu_model)  # raises CatalogError if unknown

    def test_cpu_release_not_long_after_hw_avail(self, fleet):
        """Server-class systems use CPUs released around their availability.

        The handful of non-x86/desktop stand-ins (which the paper filters out
        anyway) are exempt: they are drawn from a small catalog without
        matching the year.
        """
        catalog = default_catalog()
        for plan in fleet.clean:
            if plan.category != "server":
                continue
            release = catalog.get(plan.cpu_model).cpu.release
            # Release may precede availability by years (long-lived SKUs) but
            # should never be far in the future of the availability date.
            assert release.decimal_year <= plan.hw_avail.decimal_year + 1.5

    def test_operating_system_matches_era(self, fleet):
        for plan in fleet.clean:
            if plan.hw_avail.year <= 2009:
                assert "2019" not in plan.os_name and "2022" not in plan.os_name
            if "Windows Server 2003" in plan.os_name:
                assert plan.hw_avail.year <= 2008

    def test_system_models_look_like_products(self, fleet):
        pattern = re.compile(r"[A-Za-z]")
        for plan in fleet.systems:
            assert pattern.search(plan.system_model)
            assert plan.system_vendor

    def test_amd_share_rises_over_time(self, fleet):
        early = [p for p in fleet.clean if p.hw_avail.year < 2015]
        late = [p for p in fleet.clean if p.hw_avail.year >= 2019]
        catalog = default_catalog()

        def amd_share(plans):
            vendors = [catalog.get(p.cpu_model).cpu.vendor.value for p in plans]
            return np.mean([v == "AMD" for v in vendors])

        assert amd_share(late) > amd_share(early)

    def test_dual_socket_most_common(self, fleet):
        sockets = [p.sockets for p in fleet.clean if p.category == "server"]
        assert sockets.count(2) > sockets.count(1)

    def test_defective_plans_have_anomaly_kinds(self, fleet):
        kinds = {plan.anomaly for plan in fleet.defective}
        assert None not in kinds
        assert len(kinds) >= 5  # the scaled plan keeps every class


class TestDeterminismAcrossComponents:
    def test_same_seed_same_reports(self, tmp_path):
        from repro.reportgen import CorpusWriter

        CorpusWriter(tmp_path / "a", total_parsed_runs=40, seed=21).write()
        CorpusWriter(tmp_path / "b", total_parsed_runs=40, seed=21).write()
        files_a = sorted(p.name for p in (tmp_path / "a").glob("*.txt"))
        files_b = sorted(p.name for p in (tmp_path / "b").glob("*.txt"))
        assert files_a == files_b
        for name in files_a[:10]:
            assert (tmp_path / "a" / name).read_text() == (tmp_path / "b" / name).read_text()

    def test_different_seed_changes_measurements(self, tmp_path):
        from repro.reportgen import CorpusWriter

        CorpusWriter(tmp_path / "a", total_parsed_runs=40, seed=1).write()
        CorpusWriter(tmp_path / "b", total_parsed_runs=40, seed=2).write()
        text_a = sorted((tmp_path / "a").glob("*.txt"))[0].read_text()
        text_b = sorted((tmp_path / "b").glob("*.txt"))[0].read_text()
        assert text_a != text_b
