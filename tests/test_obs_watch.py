"""`campaign watch`, `profile report`, shard progress, and live rendering."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign, stream_campaign
from repro.cli.main import main as cli_main
from repro.errors import CampaignError
from repro.obs.trace import JsonlSink, Tracer, configure_tracing, get_tracer
from repro.obs.watch import render_watch_frame, watch
from repro.session import Session
from repro.session.policy import ExecutionPolicy

GENERATIONS = ["Xeon X5670", "Xeon Platinum 8480+", "EPYC 9654"]
FAST_BASE = {"load_levels": [1.0, 0.5, 0.0]}


def watch_spec(name="watch-test", seeds=(1, 2, 3, 4)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": GENERATIONS, "seed": list(seeds)},
        base=FAST_BASE,
    )


@pytest.fixture()
def finished_store(tmp_path):
    store_dir = tmp_path / "store"
    stream_campaign(watch_spec(), store_dir, shard_size=4)
    return store_dir


# --------------------------------------------------------------------------- #
# Store-level telemetry: events + shard progress
# --------------------------------------------------------------------------- #
class TestStoreEvents:
    def test_stream_campaign_emits_lifecycle_events(self, finished_store):
        store = CampaignStore(finished_store)
        events = store.event_entries()
        names = [e["event"] for e in events]
        assert names[0] == "campaign_start"
        assert names[-1] == "campaign_complete"
        flushes = [e for e in events if e["event"] == "shard_flush"]
        assert [e["index"] for e in flushes] == [0, 1, 2]
        first = flushes[0]
        assert first["units"] == 4 and first["n_rows"] > 0
        assert first["wall_s"] >= 0 and first["units_per_s"] > 0
        assert first["kernel_s"] >= 0 and first["flush_bytes"] > 0
        quantiles = first["quantiles"]
        assert "overall_ssj_ops_per_watt" in quantiles
        assert set(quantiles["overall_ssj_ops_per_watt"]) == {"p50", "p90", "p99"}
        # events.jsonl must be strict JSON — no NaN literals
        for line in store.events_path.read_text().splitlines():
            json.loads(line)

    def test_record_event_allows_name_field(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        store.record_event("custom", name="clash-is-fine", index=1)
        (entry,) = store.event_entries()
        assert entry["event"] == "custom" and entry["name"] == "clash-is-fine"
        assert entry["ts"] > 0

    def test_shard_progress_on_streaming_store(self, tmp_path):
        store_dir = tmp_path / "store"
        stream_campaign(watch_spec(), store_dir, shard_size=4, max_shards=2)
        progress = CampaignStore(store_dir).shard_progress()
        assert progress is not None
        assert (progress.total, progress.complete, progress.pending) == (3, 2, 1)
        assert "shards: 2/3 complete" in progress.describe()
        status = CampaignStore(store_dir).status()
        assert status.shards == progress
        assert "shards: 2/3 complete" in status.describe()

    def test_resident_store_reports_no_shard_progress(self, tmp_path):
        store_dir = tmp_path / "store"
        run_campaign(watch_spec(), store_dir)
        status = CampaignStore(store_dir).status()
        assert status.shards is None
        assert "shards:" not in status.describe()


# --------------------------------------------------------------------------- #
# Watch rendering
# --------------------------------------------------------------------------- #
class TestRenderWatchFrame:
    def test_mid_run_frame_shows_partial_progress(self, tmp_path):
        """The kill-mid-run contract: watch renders from a half-finished store."""
        store_dir = tmp_path / "store"
        stream_campaign(watch_spec(), store_dir, shard_size=4, max_shards=2)
        frame = render_watch_frame(store_dir)
        assert "shards: 2/3 complete, 0 partial, 1 pending" in frame
        assert "██·" in frame
        assert "units/s" in frame
        assert "metric  overall_ssj_ops_per_watt" in frame
        assert "streaming quantiles: p50=" in frame

    def test_completed_frame(self, finished_store):
        frame = render_watch_frame(finished_store)
        assert "shards: 3/3 complete" in frame
        assert "███" in frame and "·" not in frame.splitlines()[2]

    def test_explicit_metric_selected_and_validated(self, finished_store):
        frame = render_watch_frame(finished_store, metric="power_100")
        assert "metric  power_100" in frame
        with pytest.raises(CampaignError, match="no-such-metric"):
            render_watch_frame(finished_store, metric="no-such-metric")

    def test_empty_store_renders_waiting_message(self, tmp_path):
        store = CampaignStore(tmp_path / "empty")
        store.initialize_streaming(watch_spec(), shard_size=4)
        store.record_event("campaign_start", name="x", n_units=4)
        frame = render_watch_frame(tmp_path / "empty")
        assert "waiting for the first flush" in frame
        with pytest.raises(CampaignError):
            render_watch_frame(tmp_path / "empty", metric="anything")

    def test_narrow_width(self, finished_store):
        frame = render_watch_frame(finished_store, width=20)
        assert max(len(line) for line in frame.splitlines()) < 80

    def test_failed_units_raise_threshold_alert(self, finished_store):
        store = CampaignStore(finished_store)
        last = store.event_entries()[-2]  # latest shard_flush
        assert last["event"] == "shard_flush"
        store.record_event("shard_flush", **{**{k: v for k, v in last.items()
                                                if k != "event"},
                                             "index": 99, "failed": 3})
        frame = render_watch_frame(finished_store)
        assert "alerts:" in frame
        assert "[threshold] shard reported failed units (shard 99)" in frame


class TestWatchLoop:
    def test_once_renders_single_frame(self, finished_store):
        buffer = io.StringIO()
        frames = watch(finished_store, once=True, stream=buffer)
        assert frames == 1
        assert "shards: 3/3 complete" in buffer.getvalue()

    def test_loop_stops_when_complete(self, finished_store):
        buffer = io.StringIO()
        frames = watch(finished_store, interval=0.0, stream=buffer, max_frames=10)
        assert frames == 1  # complete on the first status check

    def test_max_frames_bounds_incomplete_store(self, tmp_path):
        store_dir = tmp_path / "store"
        stream_campaign(watch_spec(), store_dir, shard_size=4, max_shards=1)
        buffer = io.StringIO()
        frames = watch(store_dir, interval=0.0, stream=buffer, max_frames=3)
        assert frames == 3
        assert buffer.getvalue().count("units/s") == 3


# --------------------------------------------------------------------------- #
# CLI: campaign watch / profile report
# --------------------------------------------------------------------------- #
class TestWatchCli:
    def test_campaign_watch_once(self, finished_store, capsys):
        exit_code = cli_main(["campaign", "watch", "--store", str(finished_store), "--once"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "shards: 3/3 complete" in out
        assert "streaming quantiles" in out

    def test_campaign_watch_bad_metric_exits_2(self, finished_store, capsys):
        exit_code = cli_main(
            ["campaign", "watch", "--store", str(finished_store), "--once",
             "--metric", "nope"]
        )
        assert exit_code == 2
        assert "nope" in capsys.readouterr().err

    def test_campaign_status_shows_shard_line(self, finished_store, capsys):
        exit_code = cli_main(["campaign", "status", "--store", str(finished_store)])
        assert exit_code == 0
        assert "shards: 3/3 complete" in capsys.readouterr().out


class TestProfileCli:
    def test_profile_report_from_events_file(self, tmp_path, capsys):
        tracer = Tracer(enabled=True)
        tracer.add_sink(JsonlSink(tmp_path / "events.jsonl"))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        exit_code = cli_main(
            ["profile", "report", "--events", str(tmp_path / "events.jsonl")]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "span" in out and "self_s" in out
        assert "outer" in out and "inner" in out

    def test_profile_report_needs_a_source(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKSPACE", raising=False)
        exit_code = cli_main(["profile", "report"])
        assert exit_code == 2
        assert "--events" in capsys.readouterr().err

    def test_profile_report_missing_file_exits_2(self, tmp_path, capsys):
        exit_code = cli_main(
            ["profile", "report", "--events", str(tmp_path / "none.jsonl")]
        )
        assert exit_code == 2

    def test_profile_report_from_store(self, finished_store, capsys):
        store = CampaignStore(finished_store)
        tracer = Tracer(enabled=True)
        tracer.add_sink(JsonlSink(store.events_path))
        with tracer.span("extra.work"):
            pass
        exit_code = cli_main(["profile", "report", "--store", str(finished_store)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "extra.work" in out


# --------------------------------------------------------------------------- #
# Session-level profiling wiring
# --------------------------------------------------------------------------- #
class TestSessionProfiling:
    @pytest.fixture(autouse=True)
    def _reset_tracing(self):
        yield
        configure_tracing(enabled=False)

    def test_profile_policy_writes_span_events(self, tmp_path):
        session = Session(
            workspace=tmp_path / "ws",
            policy=ExecutionPolicy(profile=True),
        )
        try:
            session.dataset(runs=32, seed=7).result()
        finally:
            session.close()
        events = [
            json.loads(line)
            for line in session.events_path.read_text().splitlines()
        ]
        names = {e.get("name") for e in events if e.get("event") == "span"}
        assert names & {"dataset.derive", "dataset.parse"}
        assert any(n.startswith("session.") for n in names if n)

    def test_session_close_restores_disabled_tracer(self, tmp_path):
        session = Session(
            workspace=tmp_path / "ws",
            policy=ExecutionPolicy(profile=True),
        )
        assert session.tracer.enabled
        session.close()
        assert not get_tracer().enabled

    def test_unprofiled_session_writes_no_events(self, tmp_path):
        session = Session(workspace=tmp_path / "ws")
        try:
            session.dataset(runs=32, seed=7).result()
        finally:
            session.close()
        assert not session.events_path.exists()
