"""Tests for the core metrics, derived dataset columns and the filter pipeline."""

import numpy as np
import pytest

from repro.core import (
    DERIVED_COLUMNS,
    apply_paper_filters,
    derive_columns,
    extrapolated_idle,
    extrapolated_idle_quotient,
    idle_fraction,
    overall_efficiency,
    power_per_socket,
    relative_efficiency,
    top_n_vendor_share,
)
from repro.core.filters import paper_filter_steps
from repro.core.metrics import level_efficiency, total_sockets
from repro.errors import AnalysisError
from repro.frame import Frame
from repro.parser.fields import LOAD_LEVELS, level_field


def _synthetic_run_frame():
    """Two hand-built runs with exactly known metric values."""
    rows = []
    # Run A: perfectly proportional, 1000 W at full load, 2 sockets.
    row_a = {
        "run_id": "A", "cpu_vendor": "AMD", "cpu_family": "EPYC",
        "nodes": 1, "sockets_per_node": 2, "total_chips": 2,
        "hw_avail_year": 2023, "hw_avail_decimal": 2023.5,
        "os_family": "Linux", "power_idle": 100.0,
        "cores_total": 128, "cpu_frequency_mhz": 2250.0, "memory_gb": 256.0,
    }
    for level in LOAD_LEVELS:
        row_a[level_field("ssj_ops", level)] = 10_000.0 * level
        row_a[level_field("power", level)] = 10.0 * level
        row_a[level_field("actual_load", level)] = level / 100.0
    rows.append(row_a)
    # Run B: flat power (no proportionality), Intel, 1 socket.
    row_b = {
        "run_id": "B", "cpu_vendor": "Intel", "cpu_family": "Xeon",
        "nodes": 1, "sockets_per_node": 1, "total_chips": 1,
        "hw_avail_year": 2010, "hw_avail_decimal": 2010.5,
        "os_family": "Windows", "power_idle": 300.0,
        "cores_total": 8, "cpu_frequency_mhz": 2933.0, "memory_gb": 32.0,
    }
    for level in LOAD_LEVELS:
        row_b[level_field("ssj_ops", level)] = 5_000.0 * level
        row_b[level_field("power", level)] = 400.0
        row_b[level_field("actual_load", level)] = level / 100.0
    rows.append(row_b)
    return Frame.from_records(rows)


class TestMetricsOnSyntheticRuns:
    @pytest.fixture(scope="class")
    def frame(self):
        return _synthetic_run_frame()

    def test_total_sockets(self, frame):
        assert total_sockets(frame).to_list() == [2.0, 1.0]

    def test_total_sockets_fallback(self, frame):
        without_chips = frame.with_column("total_chips", [None, None])
        assert total_sockets(without_chips).to_list() == [2.0, 1.0]

    def test_overall_efficiency_proportional_run(self, frame):
        # Run A: sum ops = 10000 * 550, sum power = 10 * 550 + 100 idle.
        value = overall_efficiency(frame)[0]
        assert value == pytest.approx(10_000 * 550 / (10 * 550 + 100))

    def test_overall_efficiency_flat_run(self, frame):
        value = overall_efficiency(frame)[1]
        assert value == pytest.approx(5_000 * 550 / (400 * 10 + 300))

    def test_power_per_socket(self, frame):
        assert power_per_socket(frame, 100)[0] == pytest.approx(1000 / 2)
        assert power_per_socket(frame, 100)[1] == pytest.approx(400.0)

    def test_level_efficiency(self, frame):
        assert level_efficiency(frame, 50)[0] == pytest.approx(10_000 * 50 / 500)

    def test_relative_efficiency_proportional_is_one(self, frame):
        for level in (90, 80, 70, 60):
            assert relative_efficiency(frame, level)[0] == pytest.approx(1.0)

    def test_relative_efficiency_flat_power_scales_with_load(self, frame):
        # Flat power: efficiency at 70 % is 0.7x the full-load efficiency.
        assert relative_efficiency(frame, 70)[1] == pytest.approx(0.7)

    def test_relative_efficiency_at_100_rejected(self, frame):
        with pytest.raises(AnalysisError):
            relative_efficiency(frame, 100)

    def test_idle_fraction(self, frame):
        assert idle_fraction(frame)[0] == pytest.approx(0.1)
        assert idle_fraction(frame)[1] == pytest.approx(0.75)

    def test_extrapolated_idle(self, frame):
        # Run A: 2*P10 - P20 = 2*100 - 200 = 0 (clamped at >= 0).
        assert extrapolated_idle(frame)[0] == pytest.approx(0.0)
        # Run B: flat power -> extrapolation equals the flat 400 W.
        assert extrapolated_idle(frame)[1] == pytest.approx(400.0)

    def test_extrapolated_idle_quotient(self, frame):
        assert extrapolated_idle_quotient(frame)[1] == pytest.approx(400.0 / 300.0)

    def test_top_n_vendor_share(self, frame):
        derived = derive_columns(frame)
        assert top_n_vendor_share(derived, "AMD", n=1) == 1.0
        assert top_n_vendor_share(derived, "AMD", n=2) == 0.5

    def test_missing_columns_rejected(self):
        with pytest.raises(AnalysisError):
            overall_efficiency(Frame.from_dict({"x": [1]}))


class TestDeriveColumns:
    def test_all_derived_columns_present(self, run_frame):
        for name in DERIVED_COLUMNS:
            assert name in run_frame, name

    def test_empty_frame_rejected(self):
        with pytest.raises(AnalysisError):
            derive_columns(Frame())

    def test_overall_efficiency_close_to_reported(self, run_frame):
        reported = run_frame["overall_ssj_ops_per_watt"].to_numpy()
        recomputed = run_frame["overall_efficiency"].to_numpy()
        keep = ~(np.isnan(reported) | np.isnan(recomputed))
        relative = np.abs(recomputed[keep] - reported[keep]) / reported[keep]
        assert np.median(relative) < 0.02

    def test_idle_fraction_in_unit_interval(self, run_frame):
        values = [v for v in run_frame["idle_fraction"].to_list() if v is not None]
        assert values
        assert all(0 < v < 1 for v in values)

    def test_quotient_at_least_one_in_median(self, run_frame):
        values = [v for v in run_frame["extrapolated_idle_quotient"].to_list() if v is not None]
        assert np.median(values) >= 1.0

    def test_is_flags_boolean(self, run_frame):
        assert run_frame["is_amd"].kind == "bool"
        assert run_frame["is_linux"].kind == "bool"


class TestFilterPipeline:
    def test_steps_definition(self):
        steps = paper_filter_steps()
        assert [s.name for s in steps] == [
            "non_intel_amd_cpu", "non_server_cpu", "multi_node_or_gt2_sockets",
        ]
        assert [s.paper_removed for s in steps] == [9, 6, 269]

    def test_apply_filters_keeps_only_single_node_dual_socket(self, run_frame):
        filtered, report = apply_paper_filters(run_frame)
        assert report.initial == len(run_frame)
        assert report.final == len(filtered)
        assert all(v in ("Intel", "AMD") for v in filtered["cpu_vendor"].to_list())
        assert all(v in ("Xeon", "Opteron", "EPYC") for v in filtered["cpu_family"].to_list())
        assert all(v == 1 for v in filtered["nodes"].to_list())
        assert all(v <= 2 for v in filtered["sockets_per_node"].to_list())

    def test_counts_are_conserved(self, run_frame):
        filtered, report = apply_paper_filters(run_frame)
        removed = sum(outcome.removed for outcome in report.outcomes)
        assert report.initial - removed == len(filtered)

    def test_removed_by(self, run_frame):
        _, report = apply_paper_filters(run_frame)
        assert report.removed_by("multi_node_or_gt2_sockets") > 0
        with pytest.raises(Exception):
            report.removed_by("bogus")

    def test_describe_and_rows(self, run_frame):
        _, report = apply_paper_filters(run_frame)
        assert "remaining" in report.describe()
        rows = report.to_rows()
        assert len(rows) == 3
        assert all("paper_removed" in row for row in rows)

    def test_empty_frame(self):
        frame = Frame.from_dict({"cpu_vendor": [], "cpu_family": [],
                                 "nodes": [], "sockets_per_node": []})
        filtered, report = apply_paper_filters(frame)
        assert len(filtered) == 0
        assert report.final == 0
