"""Tests for repro.frame.Column."""

import numpy as np
import pytest

from repro.errors import ColumnError
from repro.frame import Column


class TestConstruction:
    def test_kind_inference_float(self):
        assert Column.from_values([1.5, 2.0]).kind == "float"

    def test_kind_inference_int(self):
        assert Column.from_values([1, 2, 3]).kind == "int"

    def test_kind_inference_bool(self):
        assert Column.from_values([True, False]).kind == "bool"

    def test_kind_inference_str(self):
        assert Column.from_values(["a", "b"]).kind == "str"

    def test_mixed_int_float_becomes_float(self):
        assert Column.from_values([1, 2.5]).kind == "float"

    def test_mixed_with_string_becomes_str(self):
        column = Column.from_values([1, "x"])
        assert column.kind == "str"
        assert column.to_list() == ["1", "x"]

    def test_none_values_are_missing(self):
        column = Column.from_values([1.0, None, 3.0])
        assert column.isna().tolist() == [False, True, False]
        assert column.count() == 2

    def test_nan_values_are_missing(self):
        column = Column.from_values([1.0, float("nan")])
        assert column.isna().tolist() == [False, True]

    def test_from_numpy_float(self):
        column = Column.from_numpy(np.array([1.0, np.nan, 3.0]))
        assert column.kind == "float"
        assert column[1] is None

    def test_from_numpy_int(self):
        assert Column.from_numpy(np.arange(4)).kind == "int"

    def test_from_numpy_bool(self):
        assert Column.from_numpy(np.array([True, False])).kind == "bool"

    def test_full(self):
        column = Column.full(3, "x")
        assert column.to_list() == ["x", "x", "x"]

    def test_explicit_kind(self):
        assert Column.from_values([1, 2], kind="float").kind == "float"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ColumnError):
            Column.from_values([1], kind="decimal")

    def test_inference_stops_at_first_string(self):
        # A string anywhere forces "str"; the scan must not touch the rest
        # of the sequence (the generator would raise past the sentinel).
        def values():
            yield 1
            yield "decides it"
            raise AssertionError("inference scanned past the first string")

        from repro.frame.column import _infer_kind

        assert _infer_kind(values()) == "str"

    def test_typed_array_with_matching_kind_skips_python_scan(self):
        # from_values on a typed array + matching kind is pure array work:
        # same result as the per-value loop, including the NaN mask.
        array = np.array([1.0, np.nan, 3.0])
        column = Column.from_values(array, kind="float")
        assert column.kind == "float"
        assert column.to_list() == [1.0, None, 3.0]
        assert Column.from_values(np.arange(3), kind="int").to_list() == [0, 1, 2]
        assert Column.from_values(np.array([True]), kind="bool").to_list() == [True]

    def test_typed_array_with_mismatched_kind_still_coerces(self):
        assert Column.from_values(np.arange(3), kind="float").to_list() == [
            0.0, 1.0, 2.0
        ]
        assert Column.from_values(np.array([1.9, 2.1]), kind="int").to_list() == [1, 2]

    def test_uint64_beyond_int64_range_still_overflows(self):
        # The typed-array shortcut must not route unsigned arrays through
        # astype(int64), which would wrap instead of raising.
        with pytest.raises(OverflowError):
            Column.from_values(np.array([2**63], dtype=np.uint64), kind="int")


class TestAccess:
    def test_scalar_access(self):
        column = Column.from_values([10, 20, 30])
        assert column[0] == 10
        assert column[2] == 30

    def test_missing_access_returns_none(self):
        assert Column.from_values([None, 2])[0] is None

    def test_slice_returns_column(self):
        column = Column.from_values([1, 2, 3, 4])[1:3]
        assert isinstance(column, Column)
        assert column.to_list() == [2, 3]

    def test_iteration(self):
        assert list(Column.from_values([1, None, 3])) == [1, None, 3]

    def test_take(self):
        column = Column.from_values(["a", "b", "c"])
        assert column.take(np.array([2, 0])).to_list() == ["c", "a"]

    def test_filter(self):
        column = Column.from_values([1, 2, 3])
        assert column.filter(np.array([True, False, True])).to_list() == [1, 3]

    def test_filter_wrong_length_rejected(self):
        with pytest.raises(ColumnError):
            Column.from_values([1, 2]).filter(np.array([True]))

    def test_to_numpy_float_keeps_nan(self):
        values = Column.from_values([1.0, None]).to_numpy()
        assert values[0] == 1.0
        assert np.isnan(values[1])


class TestComparisons:
    def test_equality_mask(self):
        column = Column.from_values(["Intel", "AMD", "Intel"])
        assert (column == "Intel").tolist() == [True, False, True]

    def test_numeric_comparison(self):
        column = Column.from_values([1, 5, 10])
        assert (column > 4).tolist() == [False, True, True]
        assert (column <= 5).tolist() == [True, True, False]

    def test_missing_values_compare_false(self):
        column = Column.from_values([1.0, None, 3.0])
        assert (column > 0).tolist() == [True, False, True]
        assert (column == 1.0).tolist() == [True, False, False]

    def test_column_vs_column(self):
        a = Column.from_values([1, 2, 3])
        b = Column.from_values([3, 2, 1])
        assert (a == b).tolist() == [False, True, False]

    def test_isin(self):
        column = Column.from_values(["a", "b", None, "c"])
        assert column.isin({"a", "c"}).tolist() == [True, False, False, True]

    def test_str_contains(self):
        column = Column.from_values(["Intel Xeon", "AMD EPYC", None])
        assert column.str_contains("xeon").tolist() == [True, False, False]

    def test_str_contains_case_sensitive(self):
        column = Column.from_values(["Xeon"])
        assert column.str_contains("xeon", case=True).tolist() == [False]

    def test_str_contains_on_numbers_rejected(self):
        with pytest.raises(ColumnError):
            Column.from_values([1, 2]).str_contains("x")


class TestArithmetic:
    def test_add_scalar(self):
        assert (Column.from_values([1.0, 2.0]) + 1).to_list() == [2.0, 3.0]

    def test_subtract_columns(self):
        a = Column.from_values([5.0, 10.0])
        b = Column.from_values([2.0, 4.0])
        assert (a - b).to_list() == [3.0, 6.0]

    def test_multiply(self):
        assert (Column.from_values([2, 3]) * 2.0).to_list() == [4.0, 6.0]

    def test_divide_propagates_missing(self):
        a = Column.from_values([10.0, None])
        result = a / 2
        assert result[0] == 5.0
        assert result[1] is None

    def test_division_by_zero_becomes_missing_or_inf(self):
        result = Column.from_values([1.0]) / 0
        assert result[0] is None or result[0] == float("inf")

    def test_arithmetic_on_strings_rejected(self):
        with pytest.raises(ColumnError):
            Column.from_values(["a"]) + 1

    def test_right_operand_forms(self):
        column = Column.from_values([2.0, 4.0])
        assert (10 - column).to_list() == [8.0, 6.0]
        assert (2 * column).to_list() == [4.0, 8.0]


class TestReductions:
    def test_mean_ignores_missing(self):
        assert Column.from_values([1.0, None, 3.0]).mean() == pytest.approx(2.0)

    def test_sum(self):
        assert Column.from_values([1, 2, 3]).sum() == 6

    def test_min_max(self):
        column = Column.from_values([5.0, 1.0, None, 9.0])
        assert column.min() == 1.0
        assert column.max() == 9.0

    def test_median_and_quantile(self):
        column = Column.from_values([1.0, 2.0, 3.0, 4.0])
        assert column.median() == pytest.approx(2.5)
        assert column.quantile(0.25) == pytest.approx(1.75)

    def test_std_of_single_value_is_nan(self):
        assert np.isnan(Column.from_values([1.0]).std())

    def test_empty_mean_is_nan(self):
        assert np.isnan(Column.from_values([], kind="float").mean())


class TestTransformations:
    def test_astype_int_to_str(self):
        assert Column.from_values([1, 2]).astype("str").to_list() == ["1", "2"]

    def test_astype_str_to_float(self):
        assert Column.from_values(["1.5", "2"]).astype("float").to_list() == [1.5, 2.0]

    def test_astype_preserves_missing(self):
        assert Column.from_values([None, "2"]).astype("float")[0] is None

    def test_fillna(self):
        assert Column.from_values([1.0, None]).fillna(0.0).to_list() == [1.0, 0.0]

    def test_dropna(self):
        assert Column.from_values([1.0, None, 2.0]).dropna().to_list() == [1.0, 2.0]

    def test_map(self):
        column = Column.from_values([1, 2, None])
        assert column.map(lambda v: v * 10).to_list() == [10, 20, None]

    def test_unique_preserves_order(self):
        assert Column.from_values(["b", "a", "b", None]).unique() == ["b", "a"]

    def test_value_counts(self):
        counts = Column.from_values(["a", "b", "a", None]).value_counts()
        assert counts == {"a": 2, "b": 1}

    def test_sort_indices_missing_last(self):
        column = Column.from_values([3.0, None, 1.0])
        assert column.take(column.sort_indices()).to_list() == [1.0, 3.0, None]

    def test_sort_indices_descending(self):
        column = Column.from_values([3.0, None, 1.0])
        assert column.take(column.sort_indices(descending=True)).to_list() == [3.0, 1.0, None]

    def test_sort_indices_strings(self):
        column = Column.from_values(["beta", "alpha", None])
        assert column.take(column.sort_indices()).to_list() == ["alpha", "beta", None]

    def test_equals(self):
        assert Column.from_values([1, None]).equals(Column.from_values([1, None]))
        assert not Column.from_values([1]).equals(Column.from_values([2]))


class TestByteAccounting:
    def test_numeric_nbytes_counts_values_and_mask(self):
        column = Column.from_values([1.0, 2.0, None, 4.0])
        # 4 float64 values + 4 mask bytes.
        assert column.nbytes == 4 * 8 + 4

    def test_int_and_bool_nbytes(self):
        assert Column.from_values([1, 2, 3]).nbytes == 3 * 8 + 3
        assert Column.from_values([True, False]).nbytes == 2 * 1 + 2

    def test_str_nbytes_counts_utf8_payload(self):
        column = Column.from_values(["ab", "cdef", None])
        pointer_bytes = column.values.nbytes + column.mask.nbytes
        assert column.nbytes == pointer_bytes + len("ab") + len("cdef")

    def test_str_nbytes_multibyte(self):
        column = Column.from_values(["ΣΔ"])
        assert column.nbytes == column.values.nbytes + column.mask.nbytes + 4

    def test_empty_column_nbytes(self):
        assert Column.from_values([], kind="float").nbytes == 0

    def test_nbytes_grows_with_filtering_inverse(self):
        column = Column.from_values(list(range(100)))
        kept = column.filter(np.arange(100) < 10)
        assert kept.nbytes < column.nbytes
