"""Sharded streaming campaigns: lazy shards, online reducers, shard resume."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    FrameReducer,
    OnlineMoments,
    StreamingCampaignResult,
    iter_shards,
    reduce_frame,
    resume_streaming,
    run_campaign,
    stream_campaign,
)
from repro.cli.main import main as cli_main
from repro.errors import CampaignError, SessionError
from repro.frame import Frame
from repro.session import Session
from repro.session.policy import ExecutionPolicy

GENERATIONS = ["Xeon X5670", "Xeon Platinum 8480+", "EPYC 9654"]

#: Short ladder keeps each simulated unit cheap; still valid downstream.
FAST_BASE = {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]}


def sharded_spec(name="shard-test", seeds=(1, 2, 3, 4, 5, 6)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": GENERATIONS, "seed": list(seeds)},
        base=FAST_BASE,
    )


# --------------------------------------------------------------------------- #
# Shard planning
# --------------------------------------------------------------------------- #
class TestIterShards:
    def test_partitioning_counts_and_offsets(self):
        spec = sharded_spec()  # 18 units
        shards = list(iter_shards(spec, shard_size=7))
        assert [s.n_units for s in shards] == [7, 7, 4]
        assert [s.index for s in shards] == [0, 1, 2]
        assert [s.start for s in shards] == [0, 7, 14]
        assert [s.stop for s in shards] == [7, 14, 18]

    def test_units_cover_expansion_in_order(self):
        spec = sharded_spec()
        expanded = spec.expand()
        streamed = [
            unit for shard in iter_shards(spec, shard_size=5) for unit in shard.units
        ]
        assert [u.key for u in streamed] == [u.key for u in expanded]

    def test_shard_size_one_and_oversized(self):
        spec = sharded_spec(seeds=(1,))  # 3 units
        assert [s.n_units for s in iter_shards(spec, shard_size=1)] == [1, 1, 1]
        whole = list(iter_shards(spec, shard_size=100))
        assert len(whole) == 1 and whole[0].n_units == 3

    def test_invalid_shard_size_rejected(self):
        with pytest.raises(CampaignError, match="shard_size"):
            list(iter_shards(sharded_spec(), shard_size=0))

    def test_lazy_consumption_resolves_only_what_is_pulled(self):
        # Pulling one shard from the iterator must not expand the plan.
        spec = sharded_spec()  # 18 units
        resolved = {"n": 0}
        original = CampaignSpec._resolve_unit

        def counting(self, index, assignment, catalog):
            resolved["n"] += 1
            return original(self, index, assignment, catalog)

        CampaignSpec._resolve_unit = counting
        try:
            iterator = iter_shards(spec, shard_size=5)
            first = next(iterator)
        finally:
            CampaignSpec._resolve_unit = original
        assert first.n_units == 5
        assert resolved["n"] == 5

    def test_keys_digest_tracks_content(self):
        spec = sharded_spec()
        first = next(iter_shards(spec, shard_size=5))
        again = next(iter_shards(spec, shard_size=5))
        assert first.keys_digest() == again.keys_digest()
        other = next(iter_shards(sharded_spec(seeds=(7, 8, 9, 10, 11)), shard_size=5))
        assert first.keys_digest() != other.keys_digest()


# --------------------------------------------------------------------------- #
# Online reducers
# --------------------------------------------------------------------------- #
class TestOnlineMoments:
    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(7)
        values = rng.normal(10.0, 3.0, 500)
        moments = OnlineMoments()
        moments.update(values)
        assert moments.count == 500
        assert moments.total == pytest.approx(values.sum(), rel=1e-12)
        assert moments.mean == pytest.approx(values.mean(), rel=1e-12)
        assert moments.minimum == values.min() and moments.maximum == values.max()
        assert moments.variance == pytest.approx(values.var(), rel=1e-10)

    def test_sequential_update_is_shard_invariant(self):
        # The bit-identity contract: where the stream is cut cannot change
        # a single float, because the scalar recurrence sees the same values
        # in the same order either way.
        values = list(np.random.default_rng(11).normal(5.0, 2.0, 101))
        one_pass = OnlineMoments()
        one_pass.update(values)
        chunked = OnlineMoments()
        for start in range(0, len(values), 13):
            chunked.update(values[start : start + 13])
        assert chunked.as_row() == one_pass.as_row()

    def test_mask_and_none_skipped(self):
        moments = OnlineMoments()
        moments.update([1.0, None, 3.0], mask=np.array([False, False, True]))
        assert moments.count == 1 and moments.total == 1.0

    def test_merge_combines_independent_streams(self):
        left, right = OnlineMoments(), OnlineMoments()
        a = list(np.random.default_rng(3).normal(0.0, 1.0, 40))
        b = list(np.random.default_rng(4).normal(2.0, 0.5, 60))
        left.update(a)
        right.update(b)
        merged = left.merge(right)
        both = np.array(a + b)
        assert merged.count == 100
        assert merged.mean == pytest.approx(both.mean(), rel=1e-12)
        assert merged.variance == pytest.approx(both.var(), rel=1e-10)
        assert merged.minimum == both.min() and merged.maximum == both.max()

    def test_merge_with_empty_is_identity(self):
        filled = OnlineMoments()
        filled.update([1.0, 2.0, 3.0])
        for merged in (filled.merge(OnlineMoments()), OnlineMoments().merge(filled)):
            assert merged.as_row() == filled.as_row()

    def test_empty_accumulator_row(self):
        row = OnlineMoments().as_row()
        assert row["count"] == 0
        assert all(row[field] is None for field in ("sum", "mean", "min", "max", "var"))


class TestFrameReducer:
    def test_streamed_equals_single_pass_bit_for_bit(self):
        rng = np.random.default_rng(21)
        frame = Frame.from_dict(
            {
                "power": list(rng.normal(200.0, 30.0, 90)),
                "ops": list(rng.integers(1_000, 9_000, 90)),
                "label": [f"run-{i}" for i in range(90)],
            }
        )
        streamed = FrameReducer()
        for start in range(0, 90, 17):
            mask = np.zeros(90, dtype=bool)
            mask[start : start + 17] = True
            streamed.update(frame.filter(mask))
        assert streamed.to_frame().equals(reduce_frame(frame))

    def test_string_columns_excluded(self):
        frame = Frame.from_dict({"name": ["a", "b"], "value": [1.0, 2.0]})
        summary = reduce_frame(frame)
        assert summary["column"].to_list() == ["value"]

    def test_missing_values_not_counted(self):
        frame = Frame.from_dict({"value": [1.0, None, 3.0]})
        summary = reduce_frame(frame)
        assert summary["count"][0] == 2 and summary["sum"][0] == 4.0

    def test_schema_drift_across_shards_tolerated(self):
        reducer = FrameReducer()
        reducer.update(Frame.from_dict({"a": [1.0], "b": [2.0]}))
        reducer.update(Frame.from_dict({"a": [3.0]}))
        summary = reducer.to_frame()
        by_column = {summary["column"][i]: summary["count"][i] for i in range(2)}
        assert by_column == {"a": 2, "b": 1}


# --------------------------------------------------------------------------- #
# Streaming execution (end-to-end)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def streamed_campaign(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("shard-store")
    spec = sharded_spec()
    result = stream_campaign(spec, store_dir, shard_size=5)
    return spec, store_dir, result


class TestStreamCampaign:
    def test_full_run_shape(self, streamed_campaign):
        _, _, result = streamed_campaign
        assert result.total_units == 18 and result.total_shards == 4
        assert result.simulated == 18 and result.cache_hits == 0
        assert result.is_complete and not result.failures
        assert [s.n_units for s in result.shards] == [5, 5, 5, 3]

    def test_bit_identical_to_unsharded_frame(self, streamed_campaign, tmp_path):
        spec, _, result = streamed_campaign
        unsharded = run_campaign(spec, tmp_path / "unsharded")
        assert result.frame().equals(unsharded.frame)

    def test_aggregate_bit_identical_to_unsharded_reduction(
        self, streamed_campaign, tmp_path
    ):
        spec, _, result = streamed_campaign
        unsharded = run_campaign(spec, tmp_path / "unsharded")
        assert result.aggregate.equals(reduce_frame(unsharded.frame))

    def test_shard_layout_invariance(self, streamed_campaign, tmp_path):
        # A different shard size changes only when rows hit disk, not what
        # they are: frame and aggregate stay bit-identical.
        spec, _, result = streamed_campaign
        other = stream_campaign(spec, tmp_path / "other", shard_size=11)
        assert other.total_shards == 2
        assert other.frame().equals(result.frame())
        assert other.aggregate.equals(result.aggregate)

    def test_second_run_reloads_every_shard(self, streamed_campaign):
        spec, store_dir, _ = streamed_campaign
        warm = stream_campaign(spec, store_dir, shard_size=5)
        assert warm.simulated == 0 and warm.cache_hits == 18
        assert all(shard.reloaded for shard in warm.shards)

    def test_iter_frames_streams_shard_by_shard(self, streamed_campaign):
        _, _, result = streamed_campaign
        lengths = [len(frame) for frame in result.iter_frames()]
        assert lengths == [5, 5, 5, 3]

    def test_write_csv_matches_materialised_csv(self, streamed_campaign, tmp_path):
        from repro.frame.csvio import frame_to_csv_text

        _, _, result = streamed_campaign
        path = tmp_path / "rows.csv"
        assert result.write_csv(path) == 18
        assert path.read_text(encoding="utf-8") == frame_to_csv_text(result.frame())

    def test_store_records_layout_and_manifest(self, streamed_campaign):
        _, store_dir, result = streamed_campaign
        store = CampaignStore(store_dir)
        assert store.stored_shard_size() == 5
        entries = store.shard_entries()
        assert sorted(entries) == [0, 1, 2, 3]
        assert all(entry["status"] == "complete" for entry in entries.values())
        assert entries[0]["artifact"] == result.shards[0].artifact_key

    def test_status_from_light_manifest(self, streamed_campaign):
        _, store_dir, _ = streamed_campaign
        status = CampaignStore(store_dir).status()
        assert status.total == 18 and status.completed == 18
        assert status.is_complete and status.failed == 0

    def test_invalid_shard_size_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="shard_size"):
            stream_campaign(sharded_spec(), tmp_path / "store", shard_size=0)


class TestShardResume:
    def test_killed_campaign_resumes_at_shard_granularity(self, tmp_path):
        # Emulate a mid-run kill: stop after 2 of 4 shards, then resume and
        # prove only the incomplete shards execute.
        spec = sharded_spec(name="killed")
        store_dir = tmp_path / "store"
        partial = stream_campaign(spec, store_dir, shard_size=5, max_shards=2)
        assert partial.total_shards == 2 and partial.completed == 10
        assert not partial.is_complete

        resumed = resume_streaming(store_dir)
        assert resumed.shard_size == 5  # layout read back from the store
        assert resumed.is_complete and resumed.completed == 18
        assert [s.reloaded for s in resumed.shards] == [True, True, False, False]
        assert resumed.simulated == 8 and resumed.cache_hits == 10

        # The interrupted-then-resumed aggregate is bit-identical to an
        # uninterrupted run.
        uninterrupted = stream_campaign(spec, tmp_path / "clean", shard_size=5)
        assert resumed.aggregate.equals(uninterrupted.aggregate)
        assert resumed.frame().equals(uninterrupted.frame())

    def test_partial_shard_from_unit_budget_completes_on_resume(self, tmp_path):
        spec = sharded_spec(name="budget")
        store_dir = tmp_path / "store"
        partial = stream_campaign(spec, store_dir, shard_size=5, max_units=3)
        assert partial.simulated == 3
        first = partial.shards[0]
        assert first.n_rows == 3 and not first.is_complete
        entries = CampaignStore(store_dir).shard_entries()
        assert entries[0]["status"] == "partial"

        resumed = resume_streaming(store_dir)
        assert resumed.is_complete
        # The partial shard re-executed its missing units only; its first
        # three rows were per-unit cache hits.
        assert not resumed.shards[0].reloaded
        assert resumed.cache_hits == 3 and resumed.simulated == 15

    def test_mismatched_layout_still_correct_via_unit_cache(self, tmp_path):
        spec = sharded_spec(name="relayout")
        store_dir = tmp_path / "store"
        stream_campaign(spec, store_dir, shard_size=5, max_shards=2)
        # Resuming with a different layout voids shard-granular skipping
        # (keys digests no longer match) but unit-level caching keeps the
        # result correct and cheap.
        resumed = resume_streaming(store_dir, shard_size=4)
        assert resumed.is_complete and resumed.simulated == 8
        assert resumed.cache_hits == 10
        clean = stream_campaign(spec, tmp_path / "clean", shard_size=4)
        assert resumed.frame().equals(clean.frame())

    def test_corrupt_shard_artifact_reexecutes_from_unit_cache(self, tmp_path):
        spec = sharded_spec(name="corrupt", seeds=(1, 2))
        store_dir = tmp_path / "store"
        first = stream_campaign(spec, store_dir, shard_size=3)
        store = CampaignStore(store_dir)
        sidecar = store.shard_store.sidecar_path(first.shards[0].artifact_key)
        sidecar.write_bytes(b"not an npz")

        again = stream_campaign(spec, store_dir, shard_size=3)
        assert again.is_complete and again.simulated == 0
        assert not again.shards[0].reloaded  # rebuilt from the unit cache
        assert again.shards[1].reloaded
        assert again.frame().equals(first.frame())

    def test_missing_artifact_surfaces_as_campaign_error(self, tmp_path):
        spec = sharded_spec(name="vanished", seeds=(1,))
        result = stream_campaign(spec, tmp_path / "store", shard_size=2)
        store = CampaignStore(tmp_path / "store")
        store.shard_store.clear()
        with pytest.raises(CampaignError, match="artifact is missing"):
            list(result.iter_frames())

    def test_max_units_counts_failed_attempts(self, tmp_path, monkeypatch):
        # The budget bounds *attempts*, exactly like the unsharded runner's
        # pending[:max_units] — a plan of failing units must not be
        # re-attempted without limit.
        import repro.campaign.runner as runner

        spec = sharded_spec(name="budget-fail", seeds=(1,))  # 3 units
        attempts = {"n": 0}

        def always_failing(pending, config, batch, catalog):
            attempts["n"] += len(pending)
            return [(unit.key, None, "SimulationError: injected") for unit in pending]

        monkeypatch.setattr(runner, "dispatch_simulations", always_failing)
        result = stream_campaign(
            spec, tmp_path / "store", shard_size=1, max_units=2
        )
        assert attempts["n"] == 2
        assert len(result.failures) == 2 and result.simulated == 0

    def test_explicit_batch_argument_beats_policy(self, tmp_path, monkeypatch):
        import repro.campaign.runner as runner

        spec = sharded_spec(name="batch-arg", seeds=(1,))
        seen: list[bool] = []
        original = runner.dispatch_simulations

        def spying(pending, config, batch, catalog):
            seen.append(batch)
            return original(pending, config, batch, catalog)

        monkeypatch.setattr(runner, "dispatch_simulations", spying)
        stream_campaign(
            spec,
            tmp_path / "store",
            shard_size=3,
            batch=False,
            policy=ExecutionPolicy(mode="batch"),
        )
        assert seen == [False]  # the docstring promise: explicit wins

    def test_failure_keeps_shard_partial_and_resumable(self, tmp_path, monkeypatch):
        import repro.campaign.runner as runner

        spec = sharded_spec(name="flaky", seeds=(1,))
        store_dir = tmp_path / "store"
        original = runner.dispatch_simulations

        def sabotaged(pending, config, batch, catalog):
            outcomes = original(pending, config, batch, catalog)
            key, _, _ = outcomes[0]
            return [(key, None, "SimulationError: injected")] + outcomes[1:]

        monkeypatch.setattr(runner, "dispatch_simulations", sabotaged)
        broken = stream_campaign(spec, store_dir, shard_size=3)
        assert len(broken.failures) == 1 and broken.completed == 2
        assert not broken.is_complete
        monkeypatch.setattr(runner, "dispatch_simulations", original)

        healed = resume_streaming(store_dir)
        assert healed.is_complete and healed.simulated == 1
        clean = stream_campaign(spec, tmp_path / "clean", shard_size=3)
        assert healed.frame().equals(clean.frame())


# --------------------------------------------------------------------------- #
# Multi-worker execution (lease-coordinated shard scheduler)
# --------------------------------------------------------------------------- #
class TestMultiWorker:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_n_worker_run_bit_identical_to_serial_stream(self, tmp_path, workers):
        # The acceptance invariant: fanning shards across N workers changes
        # scheduling only — frame and aggregate stay bit-identical to the
        # serial streamed run.
        spec = sharded_spec(name="mworkers")
        serial = stream_campaign(spec, tmp_path / "serial", shard_size=5)
        fanned = stream_campaign(
            spec, tmp_path / f"w{workers}", shard_size=5, workers=workers
        )
        assert fanned.n_workers == workers
        assert fanned.is_complete and not fanned.failures
        assert fanned.frame().equals(serial.frame())
        assert fanned.aggregate.equals(serial.aggregate)

    def test_worker_run_matches_unsharded_reduction(self, tmp_path):
        spec = sharded_spec(name="mw-unsharded")
        unsharded = run_campaign(spec, tmp_path / "unsharded")
        fanned = stream_campaign(spec, tmp_path / "fanned", shard_size=5, workers=2)
        assert fanned.frame().equals(unsharded.frame)
        assert fanned.aggregate.equals(reduce_frame(unsharded.frame))

    def test_workers_incompatible_with_run_caps(self, tmp_path):
        with pytest.raises(CampaignError, match="workers"):
            stream_campaign(
                sharded_spec(), tmp_path / "s", shard_size=5, workers=2, max_units=3
            )
        with pytest.raises(CampaignError, match="workers"):
            stream_campaign(
                sharded_spec(), tmp_path / "s2", shard_size=5, workers=2, max_shards=1
            )

    def test_single_worker_loop_completes_store(self, tmp_path):
        from repro.campaign import run_worker

        spec = sharded_spec(name="solo-worker")
        store_dir = tmp_path / "store"
        # Initialise the store (spec + layout) without executing anything.
        stream_campaign(spec, store_dir, shard_size=5, max_shards=0)
        assert run_worker(store_dir, "solo") == 4  # all four shards flushed

        finalized = resume_streaming(store_dir)
        assert finalized.is_complete and finalized.simulated == 0
        assert all(shard.reloaded for shard in finalized.shards)
        clean = stream_campaign(spec, tmp_path / "clean", shard_size=5)
        assert finalized.frame().equals(clean.frame())
        assert finalized.aggregate.equals(clean.aggregate)

    def test_worker_events_and_leases_in_ledgers(self, tmp_path):
        from repro.campaign import run_worker

        spec = sharded_spec(name="worker-events", seeds=(1, 2))
        store_dir = tmp_path / "store"
        stream_campaign(spec, store_dir, shard_size=3, max_shards=0)
        run_worker(store_dir, "w-obs")
        store = CampaignStore(store_dir)
        names = [event["event"] for event in store.event_entries()]
        assert "worker_start" in names and "worker_done" in names
        assert names.count("worker_shard") == 2
        assert sorted(store.lease_entries()) == [0, 1]
        assert all(
            entry["status"] == "complete" for entry in store.shard_entries().values()
        )

    def test_sigkill_mid_run_loses_at_most_one_shard(self, tmp_path):
        # The chaos contract: two workers share a store, one is SIGKILL'd
        # mid-run; the survivor + the finalize pass must still complete the
        # campaign with bit-identical results.  The assertions hold no
        # matter where (or whether) the kill lands mid-shard.
        import multiprocessing
        import os as _os
        import signal

        from repro.campaign.sharding import _worker_entry

        spec = sharded_spec(name="chaos")
        store_dir = tmp_path / "store"
        stream_campaign(spec, store_dir, shard_size=2, max_shards=0)  # 9 shards

        victim = multiprocessing.Process(
            target=_worker_entry, args=(str(store_dir), "victim", True, 120.0, None)
        )
        survivor = multiprocessing.Process(
            target=_worker_entry, args=(str(store_dir), "survivor", True, 120.0, None)
        )
        victim.start()
        survivor.start()
        time.sleep(0.4)  # let both claim and execute some shards
        if victim.is_alive():
            _os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        survivor.join(timeout=120)
        assert survivor.exitcode == 0

        # The survivor reclaims the victim's expired/dead leases; the
        # finalize pass mops up whatever remains and proves identity.
        finalized = resume_streaming(store_dir)
        assert finalized.is_complete
        clean = stream_campaign(spec, tmp_path / "clean", shard_size=2)
        assert finalized.frame().equals(clean.frame())
        assert finalized.aggregate.equals(clean.aggregate)


# --------------------------------------------------------------------------- #
# Policy + session integration
# --------------------------------------------------------------------------- #
class TestPolicyAndSession:
    def test_policy_shard_knobs(self):
        assert ExecutionPolicy().effective_shard_size is None
        assert ExecutionPolicy(shard_size=256).effective_shard_size == 256
        assert ExecutionPolicy(max_resident_results=100).effective_shard_size == 100
        clamped = ExecutionPolicy(shard_size=512, max_resident_results=128)
        assert clamped.effective_shard_size == 128 and clamped.sharded
        with pytest.raises(SessionError):
            ExecutionPolicy(shard_size=0)
        with pytest.raises(SessionError):
            ExecutionPolicy(max_resident_results=0)

    def test_from_jobs_carries_shard_size(self):
        policy = ExecutionPolicy.from_jobs(1, shard_size=64)
        assert policy.effective_shard_size == 64
        assert ExecutionPolicy.from_jobs(4, shard_size=None).effective_shard_size is None

    def test_policy_campaign_workers(self):
        # Fan-out needs all three: process mode, explicit workers > 1, and
        # a shard layout (shards are the unit of distribution).
        fanned = ExecutionPolicy(mode="process", workers=3, shard_size=64)
        assert fanned.campaign_workers == 3
        assert ExecutionPolicy(mode="process", workers=3).campaign_workers is None
        assert ExecutionPolicy(mode="process", shard_size=64).campaign_workers is None
        assert ExecutionPolicy(mode="thread", workers=3, shard_size=64).campaign_workers is None
        assert ExecutionPolicy(mode="process", workers=1, shard_size=64).campaign_workers is None

    def test_session_policy_drives_worker_fanout(self, tmp_path):
        spec = sharded_spec(name="sess-workers", seeds=(1, 2)).to_dict()  # 6 units
        policy = ExecutionPolicy(mode="process", workers=2, shard_size=3)
        with Session(policy=policy) as session:
            handle = session.campaign(spec, store=tmp_path / "store")
            assert handle.workers == 2
            result = handle.result()
            assert result.n_workers == 2 and result.is_complete
        serial = stream_campaign(
            CampaignSpec.from_dict(spec), tmp_path / "serial", shard_size=3
        )
        assert result.frame().equals(serial.frame())
        assert result.aggregate.equals(serial.aggregate)

    def test_capped_handles_stay_serial(self, tmp_path):
        spec = sharded_spec(name="capped", seeds=(1,)).to_dict()
        policy = ExecutionPolicy(mode="process", workers=2, shard_size=2)
        with Session(policy=policy) as session:
            handle = session.campaign(spec, store=tmp_path / "store", max_units=2)
            assert handle.workers is None  # caps are per-run, not per-worker
            result = handle.result()
            assert result.n_workers == 1
            explicit = session.campaign(spec, store=tmp_path / "s2", workers=4)
            assert explicit.workers == 4

    def test_session_policy_routes_to_streaming(self):
        spec = sharded_spec(name="sess", seeds=(1,)).to_dict()
        with Session(policy=ExecutionPolicy(shard_size=2)) as session:
            handle = session.campaign(spec)
            assert handle.sharded and handle.shard_size == 2
            result = handle.result()
            assert isinstance(result, StreamingCampaignResult)
            assert result.total_shards == 2
            assert handle.result() is result  # memoized
            assert len(handle.frame()) == 3

    def test_memo_distinguishes_shard_layouts(self):
        spec = sharded_spec(name="memo", seeds=(1,)).to_dict()
        with Session(policy=ExecutionPolicy(shard_size=2)) as session:
            sharded = session.campaign(spec)
            explicit = session.campaign(spec, shard_size=3)
            assert sharded._memo_key != explicit._memo_key
            # Same artifact key and default store either way: the layout
            # changes execution shape, not campaign content.
            assert sharded.key == explicit.key
            assert sharded.store_dir == explicit.store_dir

    def test_handle_resume_prefers_recorded_layout(self, tmp_path):
        spec = sharded_spec(name="hresume")
        store = tmp_path / "store"
        with Session(policy=ExecutionPolicy(shard_size=9)) as session:
            handle = session.campaign(spec.to_dict(), store=store, max_units=5)
            partial = handle.result()
            assert partial.shard_size == 9 and not partial.is_complete
        with Session(policy=ExecutionPolicy(shard_size=4)) as session:
            handle = session.campaign(spec.to_dict(), store=store)
            resumed = handle.resume()
            assert resumed.shard_size == 9  # store layout wins over policy
            assert resumed.is_complete

    def test_unsharded_handle_resumes_streamed_store_streaming(self, tmp_path):
        # An unsharded-policy session resuming a streamed store must honour
        # the recorded layout (resident resume would materialise the plan)
        # without the streaming result impersonating the resident memo.
        spec = sharded_spec(name="hresume-cross")
        store = tmp_path / "store"
        partial = stream_campaign(spec, store, shard_size=9, max_units=5)
        assert not partial.is_complete
        with Session() as session:
            handle = session.campaign(spec.to_dict(), store=store)
            assert not handle.sharded
            resumed = handle.resume()
            assert resumed.shard_size == 9  # recorded layout, not resident
            assert resumed.is_complete
            assert hasattr(resumed, "shards")  # StreamingCampaignResult
            key = handle._memo_key
            assert session._memo_get(handle.kind, key) is None


# --------------------------------------------------------------------------- #
# CLI streaming flags
# --------------------------------------------------------------------------- #
class TestCLISharding:
    def test_run_resume_status_with_shard_size(self, tmp_path, capsys):
        spec = sharded_spec(name="cli-shards", seeds=(81, 82))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        store = tmp_path / "store"
        csv = tmp_path / "rows.csv"

        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(store), "--shard-size", "4",
                         "--max-units", "4"]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2: 4/4 rows" in out  # streaming status line
        assert "4 simulated" in out

        # Resume picks the recorded layout up without --shard-size.
        assert cli_main(["campaign", "resume", "--store", str(store),
                         "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2: 4/4 rows (reloaded from store)" in out
        assert "wrote 6 rows" in out

        assert cli_main(["campaign", "status", "--store", str(store)]) == 0
        assert "6/6 units completed" in capsys.readouterr().out

    def test_csv_export_error_is_one_clean_line(self, tmp_path, capsys, monkeypatch):
        from repro.campaign.sharding import StreamingCampaignResult

        def broken_write(self, path):
            raise CampaignError("shard 0 artifact is missing")

        monkeypatch.setattr(StreamingCampaignResult, "write_csv", broken_write)
        spec = sharded_spec(name="cli-csv-err", seeds=(99,))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        rc = cli_main(["campaign", "run", "--spec", str(spec_path),
                       "--store", str(tmp_path / "store"), "--shard-size", "2",
                       "--csv", str(tmp_path / "out.csv")])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_sharded_csv_identical_to_unsharded(self, tmp_path, capsys):
        spec = sharded_spec(name="cli-csv", seeds=(91,))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        plain, sharded = tmp_path / "plain.csv", tmp_path / "sharded.csv"

        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(tmp_path / "s1"), "--csv", str(plain)]) == 0
        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(tmp_path / "s2"), "--shard-size", "2",
                         "--csv", str(sharded)]) == 0
        capsys.readouterr()
        assert sharded.read_text(encoding="utf-8") == plain.read_text(encoding="utf-8")
