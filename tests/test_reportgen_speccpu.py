"""Tests for the report writer and the SPEC CPU rate model."""

import pytest

from repro.errors import ModelError, ReportError
from repro.market import AnomalyKind, default_catalog
from repro.parser import parse_result_text, validate_run
from repro.parser.validation import ValidationIssue
from repro.reportgen import CorpusWriter, render_report, generate_corpus_files
from repro.simulator import RunDirector
from repro.speccpu import FP_RATE_SUITE, INT_RATE_SUITE, SpecCpuRateModel, SuiteKind
from repro.speccpu.model import memory_bandwidth_gbs


class TestRenderReport:
    def test_report_contains_key_fields(self, sample_results):
        text = render_report(sample_results[0])
        assert text.startswith("SPECpower_ssj2008 Result")
        assert "Hardware Availability:" in text
        assert "CPU Name:" in text
        assert "Active Idle" in text
        assert "ssj_ops" in text
        assert "Valid Run: Yes" in text

    def test_report_has_ten_load_levels(self, sample_results):
        text = render_report(sample_results[0])
        assert (
            sum(1 for line in text.splitlines() if line.strip().endswith("%") or "% |" in line)
            >= 10
        )

    def test_report_round_trips_through_parser(self, sample_results):
        for result in sample_results[:5]:
            text = render_report(result)
            parsed = parse_result_text(text, file_name=result.plan.file_name)
            record = parsed.record
            assert record.cpu_name is not None
            assert record.hw_avail_year == result.plan.hw_avail.year
            assert record.hw_avail_month == result.plan.hw_avail.month
            assert record.nodes == result.plan.nodes
            assert record.sockets_per_node == result.plan.sockets
            assert record.memory_gb == pytest.approx(result.plan.memory_gb, abs=1.0)
            assert record.power_idle == pytest.approx(
                result.active_idle.average_power_w, rel=0.01
            )
            assert record.get_level("power", 100) == pytest.approx(
                result.full_load.average_power_w, rel=0.01
            )
            assert record.overall_ssj_ops_per_watt == pytest.approx(
                result.overall_efficiency, rel=0.02
            )

    def test_parsed_report_is_valid(self, sample_results):
        report = validate_run(
            parse_result_text(render_report(sample_results[0]), "x.txt").record
        )
        assert report.is_valid


class TestAnomalyRendering:
    def _render_with_anomaly(self, sample_fleet, kind):
        from dataclasses import replace

        plan = replace(sample_fleet.analysable()[0], anomaly=kind,
                       accepted=kind != AnomalyKind.NOT_ACCEPTED)
        director = RunDirector()
        return render_report(director.run(plan))

    @pytest.mark.parametrize(
        "kind, issue",
        [
            (AnomalyKind.NOT_ACCEPTED, ValidationIssue.NOT_ACCEPTED),
            (AnomalyKind.AMBIGUOUS_DATE, ValidationIssue.AMBIGUOUS_DATE),
            (AnomalyKind.IMPLAUSIBLE_DATE, ValidationIssue.IMPLAUSIBLE_DATE),
            (AnomalyKind.AMBIGUOUS_CPU, ValidationIssue.AMBIGUOUS_CPU),
            (AnomalyKind.MISSING_NODE_COUNT, ValidationIssue.MISSING_NODE_COUNT),
            (AnomalyKind.INCONSISTENT_CORE_THREAD, ValidationIssue.INCONSISTENT_CORE_THREAD),
            (AnomalyKind.IMPLAUSIBLE_CORE_COUNT, ValidationIssue.IMPLAUSIBLE_CORE_COUNT),
        ],
    )
    def test_each_anomaly_maps_to_its_validation_issue(self, sample_fleet, kind, issue):
        text = self._render_with_anomaly(sample_fleet, kind)
        record = parse_result_text(text, "anomalous.txt").record
        report = validate_run(record)
        assert not report.is_valid
        assert report.primary_issue == issue


class TestCorpusWriter:
    def test_write_small_corpus(self, tmp_path):
        report = generate_corpus_files(tmp_path / "corpus", total_parsed_runs=40, seed=3)
        assert report.total_files == report.clean_runs + report.defective_runs
        files = list((tmp_path / "corpus").glob("*.txt"))
        assert len(files) == report.total_files
        assert all(f.stat().st_size > 500 for f in files)

    def test_writer_plan_matches_write(self, tmp_path):
        writer = CorpusWriter(tmp_path / "c", total_parsed_runs=40, seed=9)
        fleet = writer.plan()
        report = writer.write(fleet)
        assert report.total_files == len(fleet)

    def test_generation_is_deterministic(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        generate_corpus_files(a, total_parsed_runs=40, seed=12)
        generate_corpus_files(b, total_parsed_runs=40, seed=12)
        names_a = sorted(p.name for p in a.glob("*.txt"))
        names_b = sorted(p.name for p in b.glob("*.txt"))
        assert names_a == names_b
        sample = names_a[len(names_a) // 2]
        assert (a / sample).read_text() == (b / sample).read_text()

    def test_too_small_corpus_rejected(self, tmp_path):
        with pytest.raises(ReportError):
            generate_corpus_files(tmp_path / "x", total_parsed_runs=5)


class TestSpecCpuModel:
    @pytest.fixture(scope="class")
    def models(self):
        catalog = default_catalog()
        intel = SpecCpuRateModel(catalog.get("Xeon Platinum 8490H").cpu, sockets=2)
        amd = SpecCpuRateModel(catalog.get("EPYC 9754").cpu, sockets=2)
        return intel, amd

    def test_suite_composition(self):
        assert len(INT_RATE_SUITE) == 10
        assert len(FP_RATE_SUITE) == 13
        assert all(b.suite == SuiteKind.INT_RATE for b in INT_RATE_SUITE)

    def test_int_rate_factor_close_to_paper(self, models):
        intel, amd = models
        factor = amd.int_rate().score / intel.int_rate().score
        assert factor == pytest.approx(2.03, abs=0.25)

    def test_fp_rate_factor_close_to_paper(self, models):
        intel, amd = models
        factor = amd.fp_rate().score / intel.fp_rate().score
        assert factor == pytest.approx(1.53, abs=0.2)

    def test_fp_advantage_smaller_than_int_advantage(self, models):
        intel, amd = models
        int_factor = amd.int_rate().score / intel.int_rate().score
        fp_factor = amd.fp_rate().score / intel.fp_rate().score
        assert fp_factor < int_factor

    def test_absolute_scores_order_of_magnitude(self, models):
        intel, amd = models
        assert 600 < intel.int_rate().score < 1300
        assert 1300 < amd.int_rate().score < 2400

    def test_wider_vectors_help_fp_more_than_int(self, catalog):
        cpu = catalog.get("Xeon Platinum 8380").cpu
        SpecCpuRateModel(cpu, 2, memory_bandwidth_override_gbs=1e6)
        from dataclasses import replace

        wide_cpu = replace(cpu, avx_width_bits=512)
        narrow_cpu = replace(cpu, avx_width_bits=256)
        wide = SpecCpuRateModel(wide_cpu, 2, memory_bandwidth_override_gbs=1e6)
        narrower = SpecCpuRateModel(narrow_cpu, 2, memory_bandwidth_override_gbs=1e6)
        fp_gain = wide.fp_rate().score / narrower.fp_rate().score
        int_gain = wide.int_rate().score / narrower.int_rate().score
        assert fp_gain > int_gain >= 1.0

    def test_memory_bandwidth_grows_over_generations(self, catalog):
        old = memory_bandwidth_gbs(catalog.get("Xeon X5570").cpu, 2)
        new = memory_bandwidth_gbs(catalog.get("EPYC 9654").cpu, 2)
        assert new > 5 * old

    def test_bandwidth_saturation_limits_score(self, catalog):
        cpu = catalog.get("EPYC 9754").cpu
        unconstrained = SpecCpuRateModel(cpu, 2, memory_bandwidth_override_gbs=1e6)
        constrained = SpecCpuRateModel(cpu, 2, memory_bandwidth_override_gbs=200.0)
        assert constrained.fp_rate().score < unconstrained.fp_rate().score

    def test_per_benchmark_scores_positive(self, models):
        intel, _ = models
        result = intel.fp_rate()
        assert all(score > 0 for score in result.per_benchmark.values())

    def test_invalid_parameters_rejected(self, catalog):
        cpu = catalog.get("EPYC 9754").cpu
        with pytest.raises(ModelError):
            SpecCpuRateModel(cpu, sockets=0)
        with pytest.raises(ModelError):
            SpecCpuRateModel(cpu, vector_efficiency=0.0)
