"""CI bench-trend report: scripts/bench_history_report.py behaviour pins."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_history_report.py"
_spec = importlib.util.spec_from_file_location("bench_history_report", _SCRIPT)
report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(report)


def write_history_report(path: Path, minima: dict[str, float]) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"min": minimum}}
            for name, minimum in minima.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestDiscovery:
    def test_reports_sorted_by_run_number(self, tmp_path):
        write_history_report(tmp_path / "BENCH_10_abc1234.json", {"a": 1.0})
        write_history_report(tmp_path / "BENCH_2_def5678.json", {"a": 1.0})
        write_history_report(tmp_path / "BENCH_900.json", {"a": 1.0})  # run-id form
        (tmp_path / "notes.txt").write_text("ignored")
        found = report.discover_reports(tmp_path)
        assert [run for run, _, _ in found] == [2, 10, 900]
        assert found[0][1].startswith("#2")
        assert "def5678" in found[0][1]

    def test_unreadable_report_yields_empty_minima(self, tmp_path):
        bad = tmp_path / "BENCH_1.json"
        bad.write_text("{not json")
        assert report.load_minima(bad) == {}


class TestRendering:
    def test_trend_table_with_delta(self, tmp_path):
        write_history_report(tmp_path / "BENCH_1_aaaaaaa.json", {"bench_x": 0.100})
        write_history_report(
            tmp_path / "BENCH_2_bbbbbbb.json", {"bench_x": 0.150, "bench_new": 0.002}
        )
        text = report.render_report(tmp_path)
        assert "## Benchmark trend" in text
        assert "`bench_x`" in text and "`bench_new`" in text
        assert "+50.0%" in text  # newest vs previous
        assert "100.00ms" in text and "150.00ms" in text
        # bench_new has no previous run: delta column shows a dash
        new_row = next(line for line in text.splitlines() if "bench_new" in line)
        assert new_row.rstrip("| ").endswith("–")

    def test_window_drops_oldest_runs(self, tmp_path):
        for run in range(1, 10):
            write_history_report(tmp_path / f"BENCH_{run}.json", {"a": 0.01 * run})
        text = report.render_report(tmp_path, max_runs=3)
        assert "last 3 of 9 runs" in text
        assert "#9" in text and "#1 " not in text

    def test_empty_history_renders_stub(self, tmp_path):
        text = report.render_report(tmp_path)
        assert "No `BENCH_*.json` reports" in text


class TestCli:
    def test_writes_output_file(self, tmp_path):
        write_history_report(tmp_path / "BENCH_1.json", {"a": 2.5})
        out = tmp_path / "report.md"
        code = report.main(["--history", str(tmp_path), "--output", str(out)])
        assert code == 0
        assert "2.500s" in out.read_text()

    def test_missing_directory_exits_nonzero(self, tmp_path, capsys):
        import pytest

        with pytest.raises(SystemExit):
            report.main(["--history", str(tmp_path / "absent")])
