"""Executor failure modes: error propagation and process-pool pickling.

The campaign runner leans hard on the executor's contract — exceptions from
workers must reach the caller (the runner catches them *inside* its worker),
unpicklable callables must fail loudly rather than hang, and results must
stay input-ordered under every backend and chunking configuration.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ReproError
from repro.parallel import ParallelConfig, parallel_map, parallel_starmap


def _identity(x):
    return x


def _fail_on_seven(x):
    if x == 7:
        raise ValueError(f"boom at {x}")
    return x * 2


def _add(a, b):
    return a + b


class _UnpicklableCallable:
    """Callable whose instances refuse to pickle (simulates closures over
    open handles, RNG states, etc. accidentally handed to a process pool)."""

    def __call__(self, x):
        return x

    def __reduce__(self):
        raise pickle.PicklingError("deliberately unpicklable")


# Forces pool execution on every backend: no serial fallback, 1-item chunks.
def _pool_config(backend: str) -> ParallelConfig:
    return ParallelConfig(
        max_workers=2, backend=backend, chunk_size=1, serial_threshold=0
    )


class TestErrorPropagation:
    def test_serial_exception_propagates_with_message(self):
        with pytest.raises(ValueError, match="boom at 7"):
            parallel_map(_fail_on_seven, range(10), ParallelConfig(backend="serial"))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_exception_propagates_with_message(self, backend):
        with pytest.raises(ValueError, match="boom at 7"):
            parallel_map(_fail_on_seven, range(10), _pool_config(backend))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_failure_in_one_chunk_does_not_corrupt_pool(self, backend):
        config = _pool_config(backend)
        with pytest.raises(ValueError):
            parallel_map(_fail_on_seven, range(10), config)
        # The executor context exited cleanly: the next run works.
        assert parallel_map(_fail_on_seven, [1, 2, 3], config) == [2, 4, 6]

    def test_starmap_exception_propagates(self):
        with pytest.raises(TypeError):
            parallel_starmap(_add, [(1, 2), (3, None)], _pool_config("process"))


class TestProcessPickling:
    def test_module_level_function_round_trips(self):
        result = parallel_map(_identity, list(range(100)), _pool_config("process"))
        assert result == list(range(100))

    def test_lambda_rejected_by_process_backend(self):
        with pytest.raises((pickle.PicklingError, AttributeError)):
            parallel_map(lambda x: x, range(10), _pool_config("process"))

    def test_unpicklable_callable_rejected(self):
        with pytest.raises(pickle.PicklingError):
            parallel_map(_UnpicklableCallable(), range(10), _pool_config("process"))

    def test_lambda_fine_below_serial_threshold(self):
        # Small inputs take the serial fallback, where pickling never happens:
        # the executor's documented escape hatch for ad-hoc callables.
        config = ParallelConfig(max_workers=2, backend="process", serial_threshold=64)
        assert parallel_map(lambda x: -x, range(10), config) == [0] + list(range(-1, -10, -1))

    def test_unpicklable_items_rejected(self):
        items = [1, 2, _UnpicklableCallable()]
        with pytest.raises(pickle.PicklingError):
            parallel_map(_identity, items, _pool_config("process"))

    def test_thread_backend_accepts_lambdas(self):
        result = parallel_map(lambda x: x + 1, range(20), _pool_config("thread"))
        assert result == list(range(1, 21))


class TestOrderingUnderChunking:
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 64])
    def test_order_preserved_for_every_chunking(self, chunk_size):
        config = ParallelConfig(
            max_workers=4, backend="thread", chunk_size=chunk_size, serial_threshold=0
        )
        items = list(range(53))
        assert parallel_map(_identity, items, config) == items

    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(max_workers=-1)
