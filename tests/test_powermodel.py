"""Tests for the server power model components and their composition."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.market import profile_for
from repro.powermodel import (
    CoreCStateModel,
    CPUFamily,
    CPUSpec,
    DVFSModel,
    GenerationProfile,
    PackageCStateModel,
    PlatformModel,
    PSUEfficiencyCurve,
    ServerConfiguration,
    ServerPowerModel,
    TurboModel,
    Vendor,
)
from repro.powermodel.server import STANDARD_LOAD_LEVELS
from repro.units import MonthDate


def _profile(**overrides):
    base = dict(
        static_fraction=0.3,
        linear_fraction=0.5,
        quadratic_fraction=0.15,
        turbo_fraction=0.05,
        idle_quotient_mean=1.8,
    )
    base.update(overrides)
    return GenerationProfile(**base)


def _cpu(**overrides):
    base = dict(
        model="Test CPU 1000",
        vendor=Vendor.INTEL,
        family=CPUFamily.XEON,
        codename="Testlake",
        cores=16,
        threads_per_core=2,
        base_frequency_mhz=2400.0,
        max_turbo_mhz=3200.0,
        tdp_w=150.0,
        release=MonthDate(2018, 6),
        ssj_ops_per_socket=1_000_000.0,
        profile=_profile(),
    )
    base.update(overrides)
    return CPUSpec(**base)


class TestGenerationProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ModelError):
            _profile(static_fraction=0.9)

    def test_normalized(self):
        profile = _profile().normalized()
        total = (profile.static_fraction + profile.linear_fraction
                 + profile.quadratic_fraction + profile.turbo_fraction)
        assert total == pytest.approx(1.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ModelError):
            _profile(turbo_fraction=-0.05, quadratic_fraction=0.25)

    def test_idle_quotient_below_one_rejected(self):
        with pytest.raises(ModelError):
            _profile(idle_quotient_mean=0.9)


class TestCPUSpec:
    def test_threads_property(self):
        assert _cpu().threads == 32

    def test_full_load_power_default_below_tdp(self):
        assert _cpu().full_load_cpu_power_w < 150.0

    def test_full_load_power_override(self):
        assert _cpu(cpu_power_at_full_load_w=140.0).full_load_cpu_power_w == 140.0

    def test_invalid_cores_rejected(self):
        with pytest.raises(ModelError):
            _cpu(cores=0)

    def test_invalid_turbo_rejected(self):
        with pytest.raises(ModelError):
            _cpu(max_turbo_mhz=1000.0)

    def test_describe_mentions_cores_and_tdp(self):
        text = _cpu().describe()
        assert "16c" in text and "150 W" in text


class TestDVFS:
    def test_activity_factor_bounds(self):
        model = DVFSModel(governor_effectiveness=0.7, frequency_floor=0.4)
        assert model.activity_factor(0.0) == 0.0
        assert model.activity_factor(1.0) == pytest.approx(1.0)

    def test_activity_factor_monotonic(self):
        model = DVFSModel(governor_effectiveness=0.7, frequency_floor=0.4)
        loads = np.linspace(0, 1, 11)
        values = [model.activity_factor(load) for load in loads]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_better_governor_saves_more_at_partial_load(self):
        weak = DVFSModel(governor_effectiveness=0.1)
        strong = DVFSModel(governor_effectiveness=0.9)
        assert strong.activity_factor(0.3) < weak.activity_factor(0.3)

    def test_frequency_fraction_floor(self):
        model = DVFSModel(frequency_floor=0.5)
        assert model.frequency_fraction(0.0) == 0.5
        assert model.frequency_fraction(1.0) == 1.0

    def test_invalid_load_rejected(self):
        with pytest.raises(ModelError):
            DVFSModel().activity_factor(1.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            DVFSModel(governor_effectiveness=1.5)
        with pytest.raises(ModelError):
            DVFSModel(frequency_floor=0.0)


class TestCStates:
    def test_core_residency_decreases_with_load(self):
        model = CoreCStateModel()
        assert model.idle_residency(0.2) > model.idle_residency(0.8)

    def test_core_power_fraction_complements_residency(self):
        model = CoreCStateModel()
        assert model.core_power_fraction(0.3) == pytest.approx(1 - model.idle_residency(0.3))

    def test_package_quotient_without_noise(self):
        model = PackageCStateModel(base_quotient=2.0, quotient_sigma=0.0)
        assert model.effective_quotient(logical_cpus=1) == pytest.approx(2.0, rel=1e-3)

    def test_package_quotient_degrades_with_logical_cpus(self):
        model = PackageCStateModel(base_quotient=2.0, quotient_sigma=0.0,
                                   noise_per_logical_cpu=0.005)
        assert model.effective_quotient(256) < model.effective_quotient(16)

    def test_quotient_never_below_one(self):
        model = PackageCStateModel(base_quotient=1.05, quotient_sigma=0.0,
                                   noise_per_logical_cpu=0.1)
        assert model.effective_quotient(512) >= 1.0

    def test_measured_idle_power(self):
        model = PackageCStateModel(base_quotient=2.0, quotient_sigma=0.0)
        assert model.measured_idle_power(100.0, 1) == pytest.approx(50.0, rel=1e-2)

    def test_measured_idle_with_rng_is_reproducible(self):
        model = PackageCStateModel(base_quotient=2.0, quotient_sigma=0.2)
        a = model.measured_idle_power(100.0, 64, np.random.default_rng(3))
        b = model.measured_idle_power(100.0, 64, np.random.default_rng(3))
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            PackageCStateModel(base_quotient=0.5)
        with pytest.raises(ModelError):
            CoreCStateModel(max_residency=0.0)


class TestTurbo:
    def test_disabled_turbo(self):
        model = TurboModel(enabled=False, max_uplift=0.2)
        assert model.frequency_uplift(1.0) == 1.0
        assert model.power_premium(1.0) == 0.0

    def test_premium_concentrated_at_full_load(self):
        model = TurboModel(max_uplift=0.15, concentration=8)
        assert model.power_premium(1.0) == pytest.approx(1.0)
        assert model.power_premium(0.5) < 0.01

    def test_uplift_monotonic(self):
        model = TurboModel(max_uplift=0.15)
        assert model.frequency_uplift(1.0) > model.frequency_uplift(0.5) >= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            TurboModel(max_uplift=-0.1)
        with pytest.raises(ModelError):
            TurboModel(concentration=0.5)


class TestPlatform:
    def test_psu_efficiency_peak_near_half_load(self):
        curve = PSUEfficiencyCurve(peak_efficiency=0.94, rated_power_w=1000)
        assert curve.efficiency(500) > curve.efficiency(50)
        assert curve.efficiency(500) >= curve.efficiency(1000)

    def test_wall_power_above_dc_power(self):
        curve = PSUEfficiencyCurve(rated_power_w=800)
        assert curve.wall_power(400) > 400

    def test_memory_power_scales_with_load(self):
        platform = PlatformModel(memory_gb=128)
        assert platform.memory_power(1.0) > platform.memory_power(0.0) > 0

    def test_fan_power_grows_with_heat(self):
        platform = PlatformModel()
        assert platform.fan_power(400) > platform.fan_power(100)

    def test_node_wall_power_monotonic_in_cpu_power(self):
        platform = PlatformModel()
        assert platform.node_wall_power(300, 1.0) > platform.node_wall_power(100, 1.0)

    def test_for_era_improves_over_time(self):
        old = PlatformModel.for_era(2006, memory_gb=64)
        new = PlatformModel.for_era(2023, memory_gb=64)
        assert new.watts_per_gb < old.watts_per_gb
        assert new.psu.peak_efficiency > old.psu.peak_efficiency
        assert new.baseboard_w < old.baseboard_w

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            PSUEfficiencyCurve(peak_efficiency=0.3)
        with pytest.raises(ModelError):
            PlatformModel(memory_gb=-1)


class TestServerPowerModel:
    @pytest.fixture()
    def model(self):
        configuration = ServerConfiguration(cpu=_cpu(), sockets=2, memory_gb=128,
                                            psu_rating_w=800)
        return ServerPowerModel(configuration)

    def test_power_monotonic_in_load(self, model):
        powers = [model.node_power_w(level)
                  for level in sorted(lv for lv in STANDARD_LOAD_LEVELS if lv > 0)]
        assert all(b >= a for a, b in zip(powers, powers[1:]))

    def test_full_load_power_reasonable(self, model):
        per_socket = model.power_per_socket_at_full_load()
        # 150 W TDP part plus platform share: expect between 100 W and 350 W.
        assert 100 < per_socket < 350

    def test_active_idle_below_extrapolated(self, model):
        assert model.active_idle_power_w() < model.extrapolated_idle_power_w()

    def test_extrapolated_idle_close_to_static_floor(self, model):
        extrapolated = model.extrapolated_idle_power_w()
        assert 0 < extrapolated < model.node_power_w(0.1)

    def test_throughput_scales_linearly(self, model):
        assert model.throughput_ops(0.5) == pytest.approx(0.5 * model.max_throughput_ops())

    def test_load_curve_has_all_levels(self, model):
        curve = model.load_curve()
        assert len(curve) == len(STANDARD_LOAD_LEVELS)
        idle = curve[-1]
        assert idle.target_load == 0.0 and idle.ssj_ops == 0.0

    def test_overall_efficiency_positive(self, model):
        assert model.overall_efficiency() > 0

    def test_invalid_load_rejected(self, model):
        with pytest.raises(ModelError):
            model.node_power_w(1.2)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ModelError):
            ServerConfiguration(cpu=_cpu(), sockets=0)
        with pytest.raises(ModelError):
            ServerConfiguration(cpu=_cpu(), memory_gb=0)

    def test_two_sockets_draw_more_than_one(self):
        one = ServerPowerModel(ServerConfiguration(cpu=_cpu(), sockets=1, memory_gb=64))
        two = ServerPowerModel(ServerConfiguration(cpu=_cpu(), sockets=2, memory_gb=64))
        assert two.node_power_w(1.0) > one.node_power_w(1.0)

    def test_deterministic_idle_without_rng(self, model):
        assert model.active_idle_power_w() == model.active_idle_power_w()


class TestCalibrationTrends:
    """The catalog profiles must reproduce the paper's directional trends."""

    def test_modern_systems_more_efficient(self, catalog):
        def efficiency(model_name):
            entry = catalog.get(model_name)
            config = ServerConfiguration(cpu=entry.cpu, sockets=2,
                                         memory_gb=entry.typical_memory_gb_per_socket * 2)
            return ServerPowerModel(config).overall_efficiency()

        assert efficiency("EPYC 9754") > efficiency("Xeon X5670") > efficiency("Xeon E5345")

    def test_recent_amd_more_efficient_than_recent_intel(self, catalog):
        def efficiency(model_name):
            entry = catalog.get(model_name)
            config = ServerConfiguration(cpu=entry.cpu, sockets=2,
                                         memory_gb=entry.typical_memory_gb_per_socket * 2)
            return ServerPowerModel(config).overall_efficiency()

        assert efficiency("EPYC 9754") > 1.8 * efficiency("Xeon Platinum 8490H")

    def test_idle_fraction_dropped_then_regressed_for_intel(self, catalog):
        def idle_fraction(model_name):
            entry = catalog.get(model_name)
            config = ServerConfiguration(cpu=entry.cpu, sockets=2,
                                         memory_gb=entry.typical_memory_gb_per_socket * 2)
            model = ServerPowerModel(config)
            return model.active_idle_power_w() / model.node_power_w(1.0)

        early = idle_fraction("Xeon E5345")  # 2007
        minimum = idle_fraction("Xeon Platinum 8180")  # 2017
        recent = idle_fraction("Xeon Platinum 8490H")  # 2023
        assert early > 0.5
        assert minimum < 0.25
        assert recent > minimum

    def test_profile_for_interpolates_between_vendors_and_years(self):
        early = profile_for(Vendor.INTEL, 2006.0)
        late = profile_for(Vendor.INTEL, 2020.0)
        assert early.static_fraction > late.static_fraction
        assert late.idle_quotient_mean > early.idle_quotient_mean
