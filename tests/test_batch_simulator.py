"""Batch/scalar simulator equivalence.

The contract of :class:`repro.simulator.batch.BatchDirector` is that batched
execution is a pure optimisation: per run it reproduces the scalar
:class:`RunDirector` bit-for-bit when measurement noise is off, and
distributionally (same seeded streams, same moments) when noise is on.
These tests pin that contract field by field, including through random plans
(Hypothesis) and the event-fidelity fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.market.catalog import default_catalog
from repro.market.fleet import SystemPlan
from repro.simulator import (
    BatchDirector,
    BatchPowerAnalyzer,
    RunDirector,
    SimulationOptions,
)

CATALOG = default_catalog()
MODEL_NAMES = [entry.cpu.model for entry in CATALOG.entries]

RESULT_FIELDS = ("target_load", "actual_load", "ssj_ops", "average_power_w")


def make_plan(
    model: str,
    sockets: int = 2,
    nodes: int = 1,
    memory_gb: float = 64.0,
    psu_rating_w: float = 800.0,
    run_id: str = "batch-test-0",
) -> SystemPlan:
    release = CATALOG.get(model).cpu.release
    test_date = release.shift(3)
    return SystemPlan(
        run_id=run_id,
        hw_avail=release,
        sw_avail=test_date.shift(-1),
        test_date=test_date,
        publication_date=test_date.shift(2),
        cpu_model=model,
        sockets=sockets,
        nodes=nodes,
        memory_gb=memory_gb,
        os_name="SUSE Linux Enterprise Server 15",
        jvm_name="OpenJDK 17.0.2",
        system_vendor="Batch Works",
        system_model="BT-100",
        psu_rating_w=psu_rating_w,
    )


def grid_plans() -> list[SystemPlan]:
    """A small heterogeneous grid: several eras, node counts and sockets."""
    plans = []
    for index, model in enumerate(
        ["Xeon X5670", "Xeon E5-2699 v4", "Xeon Platinum 8480+", "EPYC 9654"]
    ):
        for nodes, sockets in ((1, 2), (2, 1), (4, 2)):
            plans.append(
                make_plan(
                    model,
                    sockets=sockets,
                    nodes=nodes,
                    memory_gb=32.0 * sockets * nodes,
                    psu_rating_w=1100.0,
                    run_id=f"batch-grid-{index}-{nodes}-{sockets}",
                )
            )
    return plans


def assert_runs_identical(scalar_run, batch_run):
    """Field-for-field exact equality of two RunResults."""
    assert batch_run.plan == scalar_run.plan
    assert batch_run.cpu == scalar_run.cpu
    assert batch_run.configuration == scalar_run.configuration
    assert batch_run.accepted == scalar_run.accepted
    assert batch_run.calibrated_ops == scalar_run.calibrated_ops
    assert len(batch_run.levels) == len(scalar_run.levels)
    for scalar_level, batch_level in zip(scalar_run.levels, batch_run.levels):
        for field in RESULT_FIELDS:
            assert getattr(batch_level, field) == getattr(scalar_level, field), field


class TestExactEquivalence:
    """measurement_noise=False: the batch kernel is bit-for-bit the scalar path."""

    def test_grid_noise_free(self):
        options = SimulationOptions(measurement_noise=False)
        plans = grid_plans()
        scalar = [RunDirector(options=options).run(plan) for plan in plans]
        batch = BatchDirector(options=options).run_batch(plans)
        for scalar_run, batch_run in zip(scalar, batch):
            assert_runs_identical(scalar_run, batch_run)

    def test_grid_with_noise_is_also_exact(self):
        # Stronger than the advertised distributional guarantee: the noise
        # streams are drawn per run in scalar order from the same seeds, so
        # on one platform the noisy results match exactly too.
        options = SimulationOptions(measurement_noise=True)
        plans = grid_plans()
        scalar = [RunDirector(options=options).run(plan) for plan in plans]
        batch = BatchDirector(options=options).run_batch(plans)
        for scalar_run, batch_run in zip(scalar, batch):
            assert_runs_identical(scalar_run, batch_run)

    def test_short_ladder_noise_free(self):
        options = SimulationOptions(
            measurement_noise=False, load_levels=(1.0, 0.7, 0.3, 0.0)
        )
        plans = grid_plans()[:4]
        scalar = [RunDirector(options=options).run(plan) for plan in plans]
        batch = BatchDirector(options=options).run_batch(plans)
        for scalar_run, batch_run in zip(scalar, batch):
            assert_runs_identical(scalar_run, batch_run)

    def test_per_plan_seeds_match_scalar_corpus_seeds(self):
        options = SimulationOptions(measurement_noise=False)
        plans = grid_plans()[:6]
        seeds = [11, 22, 33, 44, 55, 66]
        scalar = [
            RunDirector(options=options, corpus_seed=seed).run(plan)
            for plan, seed in zip(plans, seeds)
        ]
        batch = BatchDirector(options=options).run_batch(plans, seeds=seeds)
        for scalar_run, batch_run in zip(scalar, batch):
            assert_runs_identical(scalar_run, batch_run)

    def test_run_convenience_wrapper(self):
        options = SimulationOptions(measurement_noise=False)
        plan = make_plan("EPYC 9654")
        assert_runs_identical(
            RunDirector(options=options).run(plan),
            BatchDirector(options=options).run(plan),
        )

    @settings(deadline=None, max_examples=25)
    @given(
        model=st.sampled_from(MODEL_NAMES),
        sockets=st.integers(min_value=1, max_value=4),
        nodes=st.integers(min_value=1, max_value=4),
        memory_gb=st.floats(min_value=8.0, max_value=2048.0),
        psu_rating_w=st.sampled_from([460.0, 800.0, 1600.0, 2400.0]),
        corpus_seed=st.integers(min_value=0, max_value=2**31 - 1),
        run_tag=st.integers(min_value=0, max_value=10**6),
        load_levels=st.sampled_from(
            [None, (1.0, 0.0), (1.0, 0.5, 0.0), (1.0, 0.8, 0.6, 0.4, 0.2, 0.0)]
        ),
        interval_duration_s=st.sampled_from([60.0, 240.0, 431.0]),
    )
    def test_random_plans_agree_on_every_field(
        self,
        model,
        sockets,
        nodes,
        memory_gb,
        psu_rating_w,
        corpus_seed,
        run_tag,
        load_levels,
        interval_duration_s,
    ):
        plan = make_plan(
            model,
            sockets=sockets,
            nodes=nodes,
            memory_gb=memory_gb,
            psu_rating_w=psu_rating_w,
            run_id=f"batch-prop-{run_tag}",
        )
        options = SimulationOptions(
            measurement_noise=False,
            load_levels=load_levels,
            interval_duration_s=interval_duration_s,
        )
        scalar_run = RunDirector(options=options, corpus_seed=corpus_seed).run(plan)
        batch_run = BatchDirector(options=options, corpus_seed=corpus_seed).run_batch(
            [plan]
        )[0]
        assert_runs_identical(scalar_run, batch_run)


class TestNoisyDistributions:
    """measurement_noise=True: same seeded streams, same distributions."""

    def test_noisy_runs_agree_distributionally(self):
        options = SimulationOptions(measurement_noise=True)
        plans = [
            make_plan("Xeon E5-2699 v4", run_id=f"batch-noise-{seed}")
            for seed in range(40)
        ]
        seeds = list(range(40))
        scalar = [
            RunDirector(options=options, corpus_seed=seed).run(plan)
            for plan, seed in zip(plans, seeds)
        ]
        batch = BatchDirector(options=options).run_batch(plans, seeds=seeds)

        def moments(runs):
            full = np.array([run.full_load.average_power_w for run in runs])
            idle = np.array([run.active_idle.average_power_w for run in runs])
            efficiency = np.array([run.overall_efficiency for run in runs])
            return full, idle, efficiency

        for scalar_values, batch_values in zip(moments(scalar), moments(batch)):
            assert np.mean(batch_values) == pytest.approx(
                np.mean(scalar_values), rel=1e-6
            )
            assert np.std(batch_values) == pytest.approx(
                np.std(scalar_values), rel=1e-4
            )
            # Per-run the seeded streams line up, so the agreement is far
            # tighter than distributional: allow only last-ULP-scale drift.
            assert np.allclose(batch_values, scalar_values, rtol=1e-9)


class TestBatchDirectorBehaviour:
    def test_event_fidelity_falls_back_to_scalar(self):
        options = SimulationOptions(fidelity="event", interval_duration_s=5.0)
        plans = grid_plans()[:3]
        scalar = [RunDirector(options=options).run(plan) for plan in plans]
        batch = BatchDirector(options=options).run_batch(plans)
        for scalar_run, batch_run in zip(scalar, batch):
            assert_runs_identical(scalar_run, batch_run)

    def test_empty_batch(self):
        assert BatchDirector().run_batch([]) == []

    def test_mismatched_seeds_rejected(self):
        plans = grid_plans()[:2]
        with pytest.raises(SimulationError):
            BatchDirector().run_batch(plans, seeds=[1])

    def test_results_preserve_input_order(self):
        options = SimulationOptions(measurement_noise=False)
        plans = grid_plans()
        batch = BatchDirector(options=options).run_batch(plans)
        assert [run.plan.run_id for run in batch] == [plan.run_id for plan in plans]

    def test_windowed_batch_is_bit_identical(self):
        # max_rows bounds the (runs x levels) temporaries; per-run seeded
        # RNG streams make the windowed evaluation bit-identical to one
        # monolithic call, noise on or off.
        for noise in (False, True):
            options = SimulationOptions(measurement_noise=noise)
            plans = grid_plans()
            director = BatchDirector(options=options)
            monolithic = director.run_batch(plans, max_rows=None)
            windowed = director.run_batch(plans, max_rows=3)
            for mono_run, window_run in zip(monolithic, windowed):
                assert_runs_identical(mono_run, window_run)

    def test_invalid_max_rows_rejected(self):
        with pytest.raises(SimulationError):
            BatchDirector().run_batch(grid_plans()[:2], max_rows=0)


class TestBatchPowerAnalyzer:
    def test_validation_matches_scalar_analyzer(self):
        with pytest.raises(SimulationError):
            BatchPowerAnalyzer(accuracy=0.06)
        with pytest.raises(SimulationError):
            BatchPowerAnalyzer(sample_noise_w=-1.0)
        with pytest.raises(SimulationError):
            BatchPowerAnalyzer(sample_rate_hz=0.0)
        with pytest.raises(SimulationError):
            BatchPowerAnalyzer().samples(0.0)

    def test_negative_true_power_rejected(self):
        analyzer = BatchPowerAnalyzer()
        with pytest.raises(SimulationError):
            analyzer.measure_power(np.array([100.0, -1.0]), 1.0, 0.0)

    def test_measurement_formula(self):
        analyzer = BatchPowerAnalyzer(sample_noise_w=0.0, accuracy=0.0)
        true_power = np.array([[100.0, 50.0], [10.0, 0.0]])
        measured = analyzer.measure_power(true_power, 1.0, 0.0)
        assert np.array_equal(measured, true_power)
        # Noise can never push a reading below zero.
        clipped = analyzer.measure_power(np.array([1.0]), 1.0, -5.0)
        assert clipped[0] == 0.0
