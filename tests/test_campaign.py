"""Campaign engine: spec expansion, content-hash cache, runner, store, frame."""

from __future__ import annotations

import json

import pytest

from repro.api import analyze, run_campaign as api_run_campaign
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    FrameAccumulator,
    ResultCache,
    execute_units,
    resume_campaign,
    run_campaign,
    unit_key,
)
from repro.cli.main import main as cli_main
from repro.errors import CampaignError, SimulationError
from repro.simulator import SimulationOptions

GENERATIONS = ["Xeon X5670", "Xeon Platinum 8480+", "EPYC 9654"]

#: Short ladder keeps each simulated unit cheap; still valid downstream.
FAST_BASE = {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]}


def small_spec(name="unit-test", seeds=(1, 2, 3)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": GENERATIONS, "seed": list(seeds)},
        base=FAST_BASE,
    )


# --------------------------------------------------------------------------- #
# Spec expansion
# --------------------------------------------------------------------------- #
class TestSpec:
    def test_grid_expansion_counts_and_order(self):
        spec = small_spec()
        units = spec.expand()
        assert spec.n_units == len(units) == 9
        # Grid order: first axis outermost.
        assert [u.params["cpu_model"] for u in units[:3]] == ["Xeon X5670"] * 3
        assert [u.params["seed"] for u in units[:3]] == [1, 2, 3]

    def test_zip_expansion(self):
        spec = CampaignSpec(
            name="zipped",
            sweep={"cpu_model": GENERATIONS, "nodes": [1, 2, 4]},
            expansion="zip",
        )
        units = spec.expand()
        assert len(units) == spec.n_units == 3
        assert [u.plan.nodes for u in units] == [1, 2, 4]

    def test_zip_requires_equal_lengths(self):
        with pytest.raises(CampaignError, match="equal-length"):
            CampaignSpec(
                name="bad",
                sweep={"cpu_model": GENERATIONS, "seed": [1, 2]},
                expansion="zip",
            )

    def test_unknown_axis_rejected(self):
        with pytest.raises(CampaignError, match="unknown sweep axis"):
            CampaignSpec(name="bad", sweep={"gpu_model": ["H100"]})

    def test_axis_both_swept_and_fixed_rejected(self):
        with pytest.raises(CampaignError, match="both swept and fixed"):
            CampaignSpec(
                name="bad", sweep={"seed": [1, 2]}, base={"seed": 3, "cpu_model": GENERATIONS[0]}
            )

    def test_unknown_cpu_model_rejected_at_expansion(self):
        spec = CampaignSpec(name="bad", sweep={"cpu_model": ["Xeon Imaginary 1"]})
        with pytest.raises(Exception, match="unknown CPU model"):
            spec.expand()

    def test_missing_cpu_model_rejected(self):
        spec = CampaignSpec(name="bad", sweep={"seed": [1, 2]})
        with pytest.raises(CampaignError, match="cpu_model"):
            spec.expand()

    def test_repeated_axis_values_rejected(self):
        with pytest.raises(CampaignError, match="repeats values"):
            CampaignSpec(name="dup", sweep={"cpu_model": [GENERATIONS[0]] * 2})

    def test_duplicate_scenarios_rejected_at_expansion(self):
        # 384 and 384.0 are distinct axis values but resolve to the same
        # scenario content — the expansion-level dedup catches that.
        spec = CampaignSpec(
            name="dup",
            sweep={"memory_gb": [384, 384.0]},
            base={"cpu_model": GENERATIONS[0]},
        )
        with pytest.raises(CampaignError, match="same scenario"):
            spec.expand()

    def test_option_axes_reach_simulation_options(self):
        spec = CampaignSpec(
            name="opts",
            sweep={"fidelity": ["analytic", "event"]},
            base={"cpu_model": GENERATIONS[0], "interval_duration_s": 30.0},
        )
        units = spec.expand()
        assert [u.options.fidelity for u in units] == ["analytic", "event"]
        assert all(u.options.interval_duration_s == 30.0 for u in units)

    def test_load_level_sets_validated(self):
        with pytest.raises(SimulationError, match="100 % level"):
            CampaignSpec(
                name="bad",
                sweep={"cpu_model": [GENERATIONS[0]]},
                base={"load_levels": [0.5, 0.0]},
            ).expand()

    def test_json_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        loaded = CampaignSpec.from_json_file(path)
        assert loaded.to_dict() == spec.to_dict()
        assert [u.key for u in loaded.expand()] == [u.key for u in spec.expand()]


# --------------------------------------------------------------------------- #
# Content-hash cache
# --------------------------------------------------------------------------- #
class TestCache:
    PARAMS = {"cpu_model": "EPYC 9654", "nodes": 1, "sockets": 2,
              "memory_gb": 384.0, "seed": 7}

    def test_key_stable_across_orderings(self):
        options = SimulationOptions()
        shuffled = dict(reversed(list(self.PARAMS.items())))
        assert unit_key(self.PARAMS, options) == unit_key(shuffled, options)

    def test_key_sensitive_to_every_input(self):
        base = unit_key(self.PARAMS, SimulationOptions())
        assert unit_key({**self.PARAMS, "seed": 8}, SimulationOptions()) != base
        assert unit_key(self.PARAMS, SimulationOptions(fidelity="event")) != base
        assert unit_key(
            self.PARAMS, SimulationOptions(load_levels=(1.0, 0.5, 0.0))
        ) != base

    def test_key_depends_on_catalog_entry_content(self):
        # Same model name, different silicon: a custom catalog must not
        # reuse cache entries simulated under the default catalog.
        from dataclasses import replace as dc_replace

        from repro.market.catalog import default_catalog, Catalog

        default = default_catalog()
        modified_entries = [
            dc_replace(e, cpu=dc_replace(e.cpu, tdp_w=e.cpu.tdp_w * 2))
            if e.cpu.model == GENERATIONS[0] else e
            for e in default.entries
        ]
        spec = small_spec(seeds=(1,))
        base_keys = [u.key for u in spec.expand(default)]
        new_keys = [u.key for u in spec.expand(Catalog(modified_entries))]
        changed = [i for i, (a, b) in enumerate(zip(base_keys, new_keys)) if a != b]
        # Exactly the units using the modified generation change keys.
        assert len(changed) == 1
        assert spec.expand(default)[changed[0]].params["cpu_model"] == GENERATIONS[0]

    def test_key_independent_of_campaign_name(self):
        a = small_spec(name="alpha").expand()
        b = small_spec(name="beta").expand()
        assert [u.key for u in a] == [u.key for u in b]

    def test_put_get_contains(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(self.PARAMS, SimulationOptions())
        assert cache.get(key) is None and key not in cache
        cache.put(key, {"run_id": "x", "power_idle": 42.5, "nodes": None})
        assert key in cache
        assert cache.get(key) == {"run_id": "x", "power_idle": 42.5, "nodes": None}
        assert len(cache) == 1 and list(cache.keys()) == [key]

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CampaignError, match="malformed"):
            cache.get("../../etc/passwd")

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(self.PARAMS, SimulationOptions())
        cache.put(key, {"a": 1})
        assert cache.clear() == 1
        assert key not in cache


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
class TestAccumulator:
    def test_union_of_columns_with_backfill(self):
        acc = FrameAccumulator()
        acc.add_row({"a": 1, "b": 2.0})
        acc.add_row({"a": 3, "c": "x"})
        frame = acc.to_frame()
        assert frame.columns == ["a", "b", "c"]
        assert frame["b"].to_list() == [2.0, None]
        assert frame["c"].to_list() == [None, "x"]
        assert len(acc) == 2

    def test_empty_accumulator(self):
        assert len(FrameAccumulator().to_frame()) == 0


# --------------------------------------------------------------------------- #
# Runner + store (end-to-end)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def completed_campaign(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("campaign-store")
    spec = small_spec()
    result = run_campaign(spec, store_dir)
    return spec, store_dir, result


class TestRunner:
    def test_full_run(self, completed_campaign):
        _, _, result = completed_campaign
        assert result.total_units == 9
        assert result.simulated == 9 and result.cache_hits == 0
        assert not result.failures
        assert len(result.frame) == 9

    def test_second_run_all_cache_hits(self, completed_campaign):
        spec, store_dir, first = completed_campaign
        second = run_campaign(spec, store_dir)
        assert second.simulated == 0 and second.cache_hits == 9
        assert second.frame.equals(first.frame)

    def test_campaign_columns_attached(self, completed_campaign):
        _, _, result = completed_campaign
        frame = result.frame
        for column in ("campaign_unit", "campaign_key", "campaign_seed",
                       "campaign_cpu_model", "campaign_load_levels"):
            assert column in frame
        assert sorted(set(frame["campaign_seed"].to_list())) == [1, 2, 3]
        assert set(frame["campaign_cpu_model"].to_list()) == set(GENERATIONS)
        assert frame["campaign_load_levels"].to_list()[0] == "1.0,0.5,0.2,0.1,0.0"

    def test_frame_flows_into_analyze(self, completed_campaign):
        _, _, result = completed_campaign
        analysis = analyze(result.frame, include_table1=False)
        assert len(analysis.filtered) == 9
        assert "overall_efficiency" in analysis.filtered
        assert analysis.filtered["overall_efficiency"].count() == 9

    def test_deterministic_rows_per_seed(self, completed_campaign, tmp_path):
        # Re-running one unit from scratch in a fresh store reproduces the
        # cached row exactly (content-hash identity == simulation identity).
        spec, _, result = completed_campaign
        solo = CampaignSpec(
            name="solo",
            sweep={"cpu_model": [GENERATIONS[0]]},
            base={**FAST_BASE, "seed": 1},
        )
        fresh = run_campaign(solo, tmp_path / "solo")
        key = fresh.frame["campaign_key"][0]
        match = result.frame.filter(result.frame["campaign_key"] == key)
        assert len(match) == 1
        for name in ("overall_ssj_ops_per_watt", "power_idle", "power_100"):
            assert match[name][0] == fresh.frame[name][0]

    def test_interrupted_campaign_resumes_missing_units_only(self, tmp_path):
        spec = small_spec(name="interrupted")
        store_dir = tmp_path / "store"
        partial = run_campaign(spec, store_dir, max_units=4)
        assert partial.simulated == 4 and len(partial.frame) == 4
        status = CampaignStore(store_dir).status()
        assert status.completed == 4 and status.pending == 5

        resumed = resume_campaign(store_dir)
        assert resumed.cache_hits == 4 and resumed.simulated == 5
        assert len(resumed.frame) == 9
        assert CampaignStore(store_dir).status().is_complete

    def test_unit_failure_captured_without_aborting(self, tmp_path):
        from dataclasses import replace

        spec = small_spec(name="faulty", seeds=(1,))
        units = spec.expand()
        # Corrupt one unit so its worker fails: the plan names a CPU the
        # worker's catalog does not contain.
        bad_plan = replace(units[1].plan, cpu_model="No Such CPU")
        broken = type(units[1])(
            index=units[1].index, key=units[1].key, params=units[1].params,
            plan=bad_plan, options=units[1].options, seed=units[1].seed,
        )
        units = (units[0], broken, units[2])
        store = CampaignStore(tmp_path / "store")
        store.initialize(spec, units)
        result = execute_units(units, store)
        assert result.simulated == 2
        assert len(result.failures) == 1
        assert "unknown CPU model" in result.failures[0][1]
        assert len(result.frame) == 2  # good units still aggregated
        status = store.status()
        assert status.failed == 1 and status.completed == 2

    def test_pool_engaged_despite_default_serial_threshold(self, tmp_path, monkeypatch):
        # The CLI's --jobs config keeps the executor's default
        # serial_threshold (64); campaign batches sit at chunk_size*workers
        # <= 64, so without the runner's threshold override every batch
        # would fall back to serial execution.
        import repro.parallel.executor as executor
        from repro.parallel import ParallelConfig

        engaged = {"pool": False}
        original = executor.ThreadPoolExecutor

        class SpyPool(original):
            def __init__(self, *args, **kwargs):
                engaged["pool"] = True
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(executor, "ThreadPoolExecutor", SpyPool)
        spec = small_spec(name="threshold", seeds=(41,))
        config = ParallelConfig(max_workers=2, backend="thread", chunk_size=2)
        result = run_campaign(spec, tmp_path / "store", parallel=config)
        assert result.simulated == 3 and not result.failures
        assert engaged["pool"], "campaign batches must reach the worker pool"

    def test_process_backend_executes_campaign(self, tmp_path):
        from repro.parallel import ParallelConfig

        spec = small_spec(name="pooled", seeds=(11, 12))
        config = ParallelConfig(
            max_workers=2, backend="process", chunk_size=2, serial_threshold=0
        )
        result = run_campaign(spec, tmp_path / "store", parallel=config)
        assert result.simulated == 6 and not result.failures
        # Pool execution and serial execution agree bit-for-bit.
        serial = run_campaign(spec, tmp_path / "store2")
        assert serial.frame.equals(result.frame)


class TestStore:
    def test_store_rejects_conflicting_spec(self, completed_campaign):
        spec, store_dir, _ = completed_campaign
        other = small_spec(seeds=(4, 5, 6))
        store = CampaignStore(store_dir)
        with pytest.raises(CampaignError, match="different spec"):
            store.initialize(other, other.expand())

    def test_status_on_non_store_directory(self, tmp_path):
        with pytest.raises(CampaignError, match="no spec.json"):
            CampaignStore(tmp_path / "empty").status()

    def test_ledger_survives_torn_writes(self, completed_campaign):
        spec, store_dir, _ = completed_campaign
        store = CampaignStore(store_dir)
        with store.ledger_path.open("a", encoding="utf-8") as handle:
            handle.write('{"unit_id": "torn", "key": "abc",')  # killed mid-write
        status = store.status()  # does not raise
        assert status.completed == 9


# --------------------------------------------------------------------------- #
# API + CLI wiring
# --------------------------------------------------------------------------- #
class TestWiring:
    def test_api_accepts_dict_and_path(self, tmp_path):
        spec_dict = small_spec(name="api-dict", seeds=(21,)).to_dict()
        result = api_run_campaign(spec_dict, tmp_path / "s1")
        assert result.total_units == 3

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_dict), encoding="utf-8")
        again = api_run_campaign(path, tmp_path / "s2")
        assert again.total_units == 3 and again.simulated == 3
        assert again.frame.equals(result.frame)

    def test_cli_run_status_resume(self, tmp_path, capsys):
        spec = small_spec(name="cli", seeds=(31, 32))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        store = tmp_path / "store"
        csv = tmp_path / "out.csv"

        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(store), "--max-units", "2"]) == 0
        assert cli_main(["campaign", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2/6 units completed" in out

        assert cli_main(["campaign", "resume", "--store", str(store),
                         "--csv", str(csv)]) == 0
        assert cli_main(["campaign", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "6/6 units completed" in out
        assert csv.exists()

        # Third run: everything cached.
        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(store)]) == 0
        assert "6 cached, 0 simulated" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Batch execution strategy
# --------------------------------------------------------------------------- #
class TestBatchStrategy:
    def test_batch_and_scalar_campaigns_produce_identical_frames(self, tmp_path):
        spec = small_spec(name="batch-eq", seeds=(41, 42))
        batched = run_campaign(spec, tmp_path / "batched")
        scalar = run_campaign(spec, tmp_path / "scalar", batch=False)
        assert batched.simulated == scalar.simulated == 6
        assert not batched.failures and not scalar.failures
        assert batched.frame.equals(scalar.frame)

    def test_scalar_store_is_a_full_cache_hit_for_batch(self, tmp_path):
        # Strategy independence of the cache: rows simulated scalar are
        # exactly what the batch kernel would have produced, so switching
        # strategies over one store never re-simulates anything.
        spec = small_spec(name="batch-cache", seeds=(51,))
        store = tmp_path / "store"
        cold = run_campaign(spec, store, batch=False)
        warm = run_campaign(spec, store, batch=True)
        assert warm.cache_hits == 3 and warm.simulated == 0
        assert warm.frame.equals(cold.frame)

    def test_heterogeneous_options_grouped_per_chunk(self, tmp_path):
        # Sweeping an option axis produces units with differing
        # SimulationOptions; the batch runner groups them per chunk.
        spec = CampaignSpec(
            name="batch-groups",
            sweep={
                "cpu_model": GENERATIONS[:2],
                "interval_duration_s": [120.0, 240.0],
            },
            base=FAST_BASE,
        )
        result = run_campaign(spec, tmp_path / "store")
        assert result.simulated == 4 and not result.failures
        assert len(result.frame) == 4

    def test_max_units_respected_by_batch_path(self, tmp_path):
        spec = small_spec(name="batch-max", seeds=(61, 62))
        result = run_campaign(spec, tmp_path / "store", max_units=2)
        assert result.simulated == 2
        assert result.total_units == 6


# --------------------------------------------------------------------------- #
# CLI batch flag + clean store errors
# --------------------------------------------------------------------------- #
class TestCLIBatchAndErrors:
    def test_cli_no_batch_matches_batched_run(self, tmp_path, capsys):
        spec = small_spec(name="cli-nobatch", seeds=(71,))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(tmp_path / "scalar"), "--no-batch"]) == 0
        assert cli_main(["campaign", "run", "--spec", str(spec_path),
                         "--store", str(tmp_path / "batched")]) == 0
        out = capsys.readouterr().out
        assert out.count("3 simulated") == 2

    def test_cli_status_on_missing_store_is_one_clean_line(self, tmp_path, capsys):
        rc = cli_main(["campaign", "status", "--store", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_cli_resume_on_corrupt_store_is_one_clean_line(self, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        (store / "spec.json").write_text("{not json", encoding="utf-8")
        rc = cli_main(["campaign", "resume", "--store", str(store)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_cli_run_into_foreign_store_is_one_clean_line(self, tmp_path, capsys):
        first = small_spec(name="owner", seeds=(81,))
        other = small_spec(name="intruder", seeds=(82,))
        store = tmp_path / "store"
        run_campaign(first, store)
        other_path = tmp_path / "other.json"
        other_path.write_text(json.dumps(other.to_dict()), encoding="utf-8")
        rc = cli_main(["campaign", "run", "--spec", str(other_path),
                       "--store", str(store)])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err
