"""Tests for the result-file parser, CPU classification, validation and
corpus parsing."""

import pytest

from repro.errors import ParseError
from repro.parser import (
    CorpusParseReport,
    classify_cpu,
    level_field,
    parse_directory,
    parse_result_text,
    validate_run,
)
from repro.parser.fields import LOAD_LEVELS
from repro.parser.validation import ValidationIssue

MINIMAL_REPORT = """SPECpower_ssj2008 Result
Copyright (C) 2007-2024 Standard Performance Evaluation Corporation

Test Sponsor: Example Corp
Test Date: Apr-2023
Publication Date: Jun-2023
Hardware Availability: Feb-2023
Software Availability: Dec-2022

Performance Summary:
    Overall ssj_ops/watt: 15,112

Benchmark Results Summary
=========================

Target Load | Actual Load |      ssj_ops | Average Active Power (W) | Performance to Power Ratio
------------+-------------+--------------+--------------------------+---------------------------
       100% |       99.7% |    9,400,000 |                    947.0 |                      9,926
        90% |       90.1% |    8,460,000 |                    820.0 |                     10,317
        80% |       80.0% |    7,520,000 |                    700.0 |                     10,743
        70% |       69.9% |    6,580,000 |                    615.0 |                     10,699
        60% |       60.2% |    5,640,000 |                    540.0 |                     10,444
        50% |       50.0% |    4,700,000 |                    470.0 |                     10,000
        40% |       40.1% |    3,760,000 |                    400.0 |                      9,400
        30% |       29.8% |    2,820,000 |                    330.0 |                      8,545
        20% |       20.0% |    1,880,000 |                    270.0 |                      6,963
        10% |       10.1% |      940,000 |                    210.0 |                      4,476
Active Idle |             |            0 |                     95.0 |                          0

∑ssj_ops / ∑power = 15,112

System Under Test
=================
Shared Hardware:
    Hardware Vendor: Lenovo Global Technology
    Model: ThinkSystem SR650 V3
    Number of Nodes: 1
    Nodes Identical: Yes

Hardware per Node:
    CPU Name: Intel Xeon Platinum 8490H
    CPU Characteristics: 1.90 GHz, 60 cores per chip, 350 W TDP
    CPU Frequency (MHz): 1900
    CPU Vendor: Intel
    Chips per Node: 2
    CPU(s) Enabled: 120 cores, 2 chips, 60 cores/chip
    Hardware Threads: 240 (2 / core)
    Memory Amount (GB): 256
    Power Supply Rating (W): 1100

Software per Node:
    Operating System (OS): Microsoft Windows Server 2019 Datacenter
    JVM Version: Oracle Java HotSpot 64-Bit Server VM 11

Run Compliance
==============
    Valid Run: Yes
"""


class TestClassifyCpu:
    @pytest.mark.parametrize(
        "name, vendor, cpu_class",
        [
            ("Intel Xeon Platinum 8490H", "Intel", "server"),
            ("Intel Xeon E5-2660 v3", "Intel", "server"),
            ("AMD EPYC 9754", "AMD", "server"),
            ("AMD Opteron 6174", "AMD", "server"),
            ("Intel Core i7-2600", "Intel", "desktop"),
            ("Intel Pentium D 930", "Intel", "desktop"),
            ("AMD Ryzen 7 3700X", "AMD", "desktop"),
            ("IBM POWER7 8-core", "IBM", "non_x86"),
            ("Oracle SPARC T4", "Oracle", "non_x86"),
            ("Ampere Altra Q80-30", "Ampere", "non_x86"),
        ],
    )
    def test_classification(self, name, vendor, cpu_class):
        info = classify_cpu(name)
        assert info.vendor == vendor
        assert info.cpu_class == cpu_class
        assert not info.is_ambiguous

    def test_server_families(self):
        assert classify_cpu("Intel Xeon Platinum 8280").family == "Xeon"
        assert classify_cpu("AMD EPYC 7742").family == "EPYC"
        assert classify_cpu("AMD Opteron 2356").family == "Opteron"

    def test_ambiguous_names(self):
        assert classify_cpu("Intel Processor").is_ambiguous
        assert classify_cpu("AMD Processor").is_ambiguous
        assert classify_cpu("").is_ambiguous
        assert classify_cpu(None).is_ambiguous

    def test_frequency_tokens_do_not_count_as_model(self):
        assert classify_cpu("Intel Xeon 2.4GHz").is_ambiguous is False or True
        # A name consisting solely of vendor + frequency stays ambiguous.
        assert classify_cpu("Intel 2.4GHz").is_ambiguous

    def test_is_x86_server(self):
        assert classify_cpu("AMD EPYC 9654").is_x86_server
        assert not classify_cpu("IBM POWER7 8-core").is_x86_server
        assert not classify_cpu("Intel Core i9-9900K").is_x86_server


class TestParseResultText:
    @pytest.fixture(scope="class")
    def record(self):
        return parse_result_text(MINIMAL_REPORT, "sample.txt").record

    def test_dates(self, record):
        assert (record.hw_avail_year, record.hw_avail_month) == (2023, 2)
        assert (record.test_year, record.test_month) == (2023, 4)
        assert record.sw_avail_year == 2022

    def test_cpu_fields(self, record):
        assert record.cpu_name == "Intel Xeon Platinum 8490H"
        assert record.cpu_vendor == "Intel"
        assert record.cpu_family == "Xeon"
        assert record.cpu_class == "server"
        assert record.cpu_frequency_mhz == 1900

    def test_topology_fields(self, record):
        assert record.nodes == 1
        assert record.sockets_per_node == 2
        assert record.cores_total == 120
        assert record.cores_per_chip == 60
        assert record.threads_total == 240
        assert record.threads_per_core == 2

    def test_system_fields(self, record):
        assert record.system_vendor == "Lenovo Global Technology"
        assert record.memory_gb == 256
        assert record.psu_rating_w == 1100
        assert record.os_family == "Windows"
        assert "HotSpot" in record.jvm

    def test_measurements(self, record):
        assert record.get_level("ssj_ops", 100) == 9_400_000
        assert record.get_level("power", 100) == 947.0
        assert record.get_level("actual_load", 70) == pytest.approx(0.699)
        assert record.get_level("power", 10) == 210.0
        assert record.power_idle == 95.0
        assert record.overall_ssj_ops_per_watt == 15112

    def test_accepted_flag(self, record):
        assert record.accepted is True

    def test_all_levels_present(self, record):
        for level in LOAD_LEVELS:
            assert record.get_level("power", level) is not None

    def test_non_spec_file_rejected(self):
        with pytest.raises(ParseError):
            parse_result_text("This is not a SPEC report\nat all\n")

    def test_missing_fields_become_none(self):
        text = "SPECpower_ssj2008 Result\nTest Sponsor: X\n"
        record = parse_result_text(text).record
        assert record.hw_avail_year is None
        assert record.power_idle is None

    def test_to_dict_is_rectangular(self, record):
        row = record.to_dict()
        assert level_field("power", 100) in row
        assert level_field("ssj_ops", 10) in row
        assert "per_level" not in row


class TestValidation:
    def _valid_record(self):
        return parse_result_text(MINIMAL_REPORT, "ok.txt").record

    def test_valid_record_passes(self):
        assert validate_run(self._valid_record()).is_valid

    def test_not_accepted(self):
        record = self._valid_record()
        record.accepted = False
        assert validate_run(record).primary_issue == ValidationIssue.NOT_ACCEPTED

    def test_ambiguous_date(self):
        record = self._valid_record()
        record.hw_avail_year = None
        record.hw_avail_month = None
        assert validate_run(record).primary_issue == ValidationIssue.AMBIGUOUS_DATE

    def test_implausible_date(self):
        record = self._valid_record()
        record.hw_avail_year = 1901
        assert validate_run(record).primary_issue == ValidationIssue.IMPLAUSIBLE_DATE

    def test_ambiguous_cpu(self):
        record = self._valid_record()
        record.cpu_class = "unknown"
        assert validate_run(record).primary_issue == ValidationIssue.AMBIGUOUS_CPU

    def test_missing_node_count(self):
        record = self._valid_record()
        record.nodes = None
        assert validate_run(record).primary_issue == ValidationIssue.MISSING_NODE_COUNT

    def test_inconsistent_cores(self):
        record = self._valid_record()
        record.cores_per_chip = 50
        assert validate_run(record).primary_issue == ValidationIssue.INCONSISTENT_CORE_THREAD

    def test_inconsistent_threads(self):
        record = self._valid_record()
        record.threads_total = 9999
        assert validate_run(record).primary_issue == ValidationIssue.INCONSISTENT_CORE_THREAD

    def test_implausible_core_count(self):
        record = self._valid_record()
        record.cores_total = 1_200_000
        assert validate_run(record).primary_issue == ValidationIssue.IMPLAUSIBLE_CORE_COUNT

    def test_missing_measurements(self):
        record = self._valid_record()
        record.power_idle = None
        assert validate_run(record).primary_issue == ValidationIssue.MISSING_MEASUREMENTS

    def test_chips_vs_nodes_consistency(self):
        record = self._valid_record()
        record.total_chips = 3
        assert not validate_run(record).is_valid


class TestCorpusParsing:
    def test_parse_directory_report(self, corpus_dir):
        report = parse_directory(corpus_dir)
        assert isinstance(report, CorpusParseReport)
        assert report.parsed_count > 0
        assert report.total_files == report.parsed_count + len(report.rejected)
        # Every injected defect class shows up in the rejection counts.
        reasons = report.rejection_counts()
        assert "not_accepted" in reasons
        assert sum(reasons.values()) == len(report.rejected)

    def test_rejected_files_do_not_reach_records(self, corpus_dir):
        report = parse_directory(corpus_dir)
        rejected_names = {r.file_name for r in report.rejected}
        record_names = {record.file_name for record in report.records}
        assert not rejected_names & record_names

    def test_records_to_frame_rectangular(self, corpus_dir):
        report = parse_directory(corpus_dir)
        frame = report.to_frame()
        assert len(frame) == report.parsed_count
        assert level_field("power", 100) in frame
        assert "cpu_vendor" in frame

    def test_parse_directory_missing(self, tmp_path):
        with pytest.raises(ParseError):
            parse_directory(tmp_path / "does-not-exist")

    def test_parse_directory_parallel_thread_backend(self, corpus_dir):
        from repro.parallel import ParallelConfig

        serial = parse_directory(corpus_dir)
        threaded = parse_directory(
            corpus_dir, parallel=ParallelConfig(backend="thread", max_workers=4,
                                                serial_threshold=0)
        )
        assert serial.parsed_count == threaded.parsed_count
        assert serial.rejection_counts() == threaded.rejection_counts()

    def test_describe_mentions_counts(self, corpus_dir):
        text = parse_directory(corpus_dir).describe()
        assert "parsed" in text and "rejected" in text
