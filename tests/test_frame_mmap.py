"""Out-of-core columns: NpzMap, MmapColumn, pushdown scans, mmap datasets.

Covers the third column backend end to end — zip-offset geometry against
``np.load`` ground truth, memmap reloads bit-identical to the eager
codec, honest resident-vs-mapped byte accounting, the instrumented
streamed-scan counters that prove predicate pushdown reads fewer bytes,
and the session/campaign/CLI integration that rides on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArtifactError
from repro.frame import (
    Frame,
    MmapColumn,
    NpzMap,
    SCAN_STATS,
    col,
    open_frame_npz,
    scan_npz,
)
from repro.session.columnar import frame_from_arrays, frame_to_arrays


def sample_frame() -> Frame:
    return Frame.from_dict(
        {
            "name": ["alpha", None, "c", "", "trailing\x00"],
            "score": [1.5, float("nan"), None, -0.0, 4.25],
            "count": [1, 2, None, 4, 5],
            "flag": [True, None, False, True, None],
        }
    )


@pytest.fixture()
def artifact(tmp_path):
    frame = sample_frame()
    meta, arrays = frame_to_arrays(frame)
    path = tmp_path / "frame.npz"
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    return frame, meta, path


# --------------------------------------------------------------------------- #
# NpzMap geometry
# --------------------------------------------------------------------------- #
class TestNpzMap:
    def test_members_match_np_load(self, artifact):
        _, _, path = artifact
        npz = NpzMap(path)
        with np.load(path) as loaded:
            assert sorted(npz.names) == sorted(loaded.files)
            for name in loaded.files:
                member = npz.member(name)
                assert member.dtype == loaded[name].dtype
                assert member.shape == loaded[name].shape
                mapped = np.asarray(npz.memmap(name))
                equal_nan = member.dtype.kind == "f"
                assert np.array_equal(mapped, loaded[name], equal_nan=equal_nan)

    def test_read_rows_slices_and_clamps(self, artifact):
        _, _, path = artifact
        npz = NpzMap(path)
        with np.load(path) as loaded:
            masks = loaded["masks"]
        got = npz.read_rows("masks", 1, 1, 4)
        assert np.array_equal(got, masks[1, 1:4])
        # Out-of-range bounds clamp instead of over-reading.
        assert len(npz.read_rows("masks", 0, 3, 99)) == masks.shape[1] - 3
        assert len(npz.read_rows("masks", 0, 5, 2)) == 0

    def test_read_rows_counts_bytes(self, artifact):
        _, _, path = artifact
        npz = NpzMap(path)
        SCAN_STATS.reset()
        chunk = npz.read_rows("float", 0, 0, 5)
        assert SCAN_STATS.bytes_read == chunk.nbytes > 0

    def test_missing_member_raises(self, artifact):
        _, _, path = artifact
        with pytest.raises(ArtifactError, match="no member"):
            NpzMap(path).member("nope")

    def test_compressed_member_rejected(self, tmp_path):
        path = tmp_path / "zipped.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(handle, data=np.arange(8))
        with pytest.raises(ArtifactError, match="compressed"):
            NpzMap(path).member("data")

    def test_garbage_file_raises_artifact_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(ArtifactError, match="unreadable"):
            NpzMap(path)


# --------------------------------------------------------------------------- #
# Mapped frames + byte accounting
# --------------------------------------------------------------------------- #
class TestOpenFrameNpz:
    def test_bit_identical_to_eager_codec(self, artifact):
        frame, meta, path = artifact
        eager = frame_from_arrays(meta, dict(np.load(path)))
        mapped = open_frame_npz(path, meta)
        assert mapped.columns == eager.columns == frame.columns
        assert mapped.equals(eager)
        for name in frame.columns:
            assert mapped[name].kind == eager[name].kind
            assert np.array_equal(mapped[name].mask, eager[name].mask)

    def test_numeric_columns_are_mapped(self, artifact):
        _, meta, path = artifact
        mapped = open_frame_npz(path, meta)
        for name in ("score", "count", "flag"):
            column = mapped[name]
            assert isinstance(column, MmapColumn)
            assert column.is_mapped
            assert column.mapped_nbytes > 0
            assert column.resident_nbytes == 0
        # String columns hold Python objects: heap-resident by necessity.
        assert not isinstance(mapped["name"], MmapColumn)
        assert not mapped["name"].is_mapped

    def test_column_subset_opens_only_requested(self, artifact):
        _, meta, path = artifact
        mapped = open_frame_npz(path, meta, columns=["score", "name"])
        assert mapped.columns == ["name", "score"]  # source order preserved

    def test_memory_usage_reports_the_split(self, artifact):
        _, meta, path = artifact
        mapped = open_frame_npz(path, meta)
        usage = mapped.memory_usage(deep=True)
        by_name = {
            usage["column"].values[i]: i for i in range(len(usage))
        }
        for name in ("score", "count", "flag"):
            row = by_name[name]
            assert usage["mapped"].values[row] > 0
            assert usage["resident"].values[row] == 0
        assert usage["mapped"].values[by_name["name"]] == 0
        assert usage["resident"].values[by_name["name"]] > 0
        # Default shape is unchanged (pinned elsewhere too).
        assert mapped.memory_usage().columns == ["column", "kind", "nbytes"]

    def test_operations_derive_heap_columns(self, artifact):
        frame, meta, path = artifact
        mapped = open_frame_npz(path, meta)
        picked = mapped.filter(mapped["count"] >= 2)
        assert not any(picked[name].is_mapped for name in picked.columns)
        eager = frame.filter(frame["count"] >= 2)
        assert picked.equals(eager)

    def test_heap_nbytes_unchanged(self):
        column = sample_frame()["score"]
        assert column.nbytes == column.resident_nbytes
        assert column.mapped_nbytes == 0


# --------------------------------------------------------------------------- #
# Streamed scans + pushdown byte counters
# --------------------------------------------------------------------------- #
class TestScanNpz:
    def test_full_scan_equals_eager(self, artifact):
        frame, meta, path = artifact
        collected = scan_npz(path, meta).collect()
        assert collected.equals(frame)
        assert collected.columns == frame.columns

    def test_scan_engines_agree(self, artifact):
        frame, meta, path = artifact
        plan = scan_npz(path, meta).filter(col("count") >= 2).select(
            ["name", "count"]
        )
        vector = plan.collect()
        python = plan.collect(engine="python")
        eager = frame.filter(frame["count"] >= 2).select(["name", "count"])
        assert vector.equals(eager)
        assert python.equals(eager)

    def test_pushdown_reads_fewer_bytes(self, artifact):
        frame, meta, path = artifact
        SCAN_STATS.reset()
        scan_npz(path, meta).collect()
        full_bytes = SCAN_STATS.bytes_read
        SCAN_STATS.reset()
        pruned = scan_npz(path, meta).filter(col("count") >= 4).select(["score"])
        collected = pruned.collect()
        assert SCAN_STATS.bytes_read < full_bytes
        eager = frame.filter(frame["count"] >= 4).select(["score"])
        assert collected.equals(eager)

    def test_chunked_scan_is_chunk_size_invariant(self, artifact, monkeypatch):
        frame, meta, path = artifact
        monkeypatch.setenv("REPRO_SCAN_CHUNK_ROWS", "2")
        chunked = scan_npz(path, meta).filter(col("count") >= 2).collect()
        monkeypatch.delenv("REPRO_SCAN_CHUNK_ROWS")
        whole = scan_npz(path, meta).filter(col("count") >= 2).collect()
        assert chunked.equals(whole)

    def test_scan_unknown_column_raises(self, artifact):
        _, meta, path = artifact
        with pytest.raises(Exception):
            scan_npz(path, meta).select(["ghost"]).collect()


# --------------------------------------------------------------------------- #
# Session integration: mmap datasets
# --------------------------------------------------------------------------- #
class TestDatasetMmap:
    RUNS = 40
    SEED = 11

    def test_mmap_load_is_bit_identical_and_keyless(self, tmp_path):
        from repro.session import Session

        with Session(workspace=str(tmp_path / "ws")) as session:
            eager_handle = session.dataset(runs=self.RUNS, seed=self.SEED)
            eager = eager_handle.result()
            mapped_handle = session.dataset(
                runs=self.RUNS, seed=self.SEED, mmap=True
            )
            # mmap is a load knob: same artifact, same content key.
            assert mapped_handle.key == eager_handle.key
            assert mapped_handle.uses_mmap
            mapped = mapped_handle.result()
            assert mapped is not eager  # separate memo entries
            assert mapped.equals(eager)
            assert any(
                isinstance(mapped[name], MmapColumn) for name in mapped.columns
            )

        # A fresh session over the same workspace reloads mapped, warm.
        with Session(workspace=str(tmp_path / "ws")) as warm:
            again = warm.dataset(runs=self.RUNS, seed=self.SEED, mmap=True)
            frame = again.result()
            assert any(
                isinstance(frame[name], MmapColumn) for name in frame.columns
            )
            assert frame.equals(eager)

    def test_ephemeral_session_falls_back_to_heap(self):
        from repro.session import Session

        with Session() as session:
            handle = session.dataset(runs=self.RUNS, seed=3, mmap=True)
            assert not handle.uses_mmap
            frame = handle.result()
            assert not any(
                isinstance(frame[name], MmapColumn) for name in frame.columns
            )


# --------------------------------------------------------------------------- #
# Campaign integration: lazy shard scans + the query CLI
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def streamed_store(tmp_path_factory):
    from repro.campaign import CampaignSpec, stream_campaign

    store = tmp_path_factory.mktemp("campaign") / "store"
    spec = CampaignSpec(
        name="mmap-scan",
        sweep={"cpu_model": ["Xeon X5670", "EPYC 9654"], "seed": [1, 2]},
        base={"load_levels": [1.0, 0.5, 0.0]},
    )
    result = stream_campaign(spec, store, shard_size=1)
    return str(store), result


class TestCampaignLazyScan:
    def test_lazy_frame_matches_materialised(self, streamed_store):
        _, result = streamed_store
        eager = result.frame()
        lazy = result.lazy_frame().collect()
        assert lazy.columns == eager.columns
        assert lazy.equals(eager)
        for name in eager.columns:
            assert lazy[name].kind == eager[name].kind
            assert np.array_equal(lazy[name].mask, eager[name].mask)

    def test_predicate_pushes_into_every_shard(self, streamed_store):
        _, result = streamed_store
        plan = result.lazy_frame().filter(col("campaign_seed") == 1)
        text = plan.explain()
        assert text.count("pushdown=") == result.total_shards
        eager = result.frame()
        expected = eager.filter(eager["campaign_seed"] == 1)
        assert plan.collect().equals(expected)

    def test_filtered_scan_reads_fewer_bytes(self, streamed_store):
        _, result = streamed_store
        SCAN_STATS.reset()
        result.lazy_frame().collect()
        full_bytes = SCAN_STATS.bytes_read
        SCAN_STATS.reset()
        result.lazy_frame().filter(col("campaign_seed") == 1).select(
            ["campaign_seed", "campaign_cpu_model"]
        ).collect()
        assert 0 < SCAN_STATS.bytes_read < full_bytes

    def test_scan_shards_module_entry(self, streamed_store):
        from repro.campaign import scan_shards

        store, result = streamed_store
        assert scan_shards(store).collect().equals(result.frame())

    def test_summarize_store(self, streamed_store):
        from repro.campaign import summarize_store

        store, result = streamed_store
        eager = result.frame()
        metric = next(
            name for name in eager.columns if eager[name].kind == "float"
        )
        summary = summarize_store(store, ["campaign_seed"], [metric])
        expected = eager.groupby(["campaign_seed"]).agg({metric: (metric, "mean")})
        assert summary.equals(expected)

    def test_missing_artifact_raises(self, streamed_store, tmp_path):
        import shutil

        from repro.campaign import scan_shards
        from repro.errors import CampaignError

        store, _ = streamed_store
        broken = tmp_path / "broken"
        shutil.copytree(store, broken)
        sidecars = list((broken / "shards").rglob("*.npz"))
        assert sidecars, "expected shard sidecars to remove"
        for sidecar in sidecars:
            sidecar.unlink()
        with pytest.raises(CampaignError):
            scan_shards(str(broken))


class TestCampaignQueryCli:
    def test_query_prints_matching_rows(self, streamed_store, capsys):
        from repro.cli.main import main

        store, result = streamed_store
        assert main([
            "campaign", "query", "--store", store,
            "--where", "campaign_seed == 1",
            "--columns", "campaign_seed,campaign_cpu_model",
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert lines[0] == "campaign_seed,campaign_cpu_model"
        eager = result.frame()
        expected = eager.filter(eager["campaign_seed"] == 1)
        assert len(lines) - 1 == len(expected)

    def test_query_explain_and_csv(self, streamed_store, tmp_path, capsys):
        from repro.cli.main import main

        store, _ = streamed_store
        assert main([
            "campaign", "query", "--store", store,
            "--where", "campaign_seed == 1", "--explain",
        ]) == 0
        assert "pushdown=" in capsys.readouterr().out

        out_csv = tmp_path / "rows.csv"
        assert main([
            "campaign", "query", "--store", store,
            "--limit", "3", "--csv", str(out_csv),
        ]) == 0
        assert out_csv.exists()
        assert len(out_csv.read_text().strip().splitlines()) == 4  # header + 3

    def test_query_bad_where_exits_2(self, streamed_store, capsys):
        from repro.cli.main import main

        store, _ = streamed_store
        assert main([
            "campaign", "query", "--store", store, "--where", "complete garbage",
        ]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_query_missing_store_exits_2(self, tmp_path, capsys):
        from repro.cli.main import main

        assert main([
            "campaign", "query", "--store", str(tmp_path / "nowhere"),
        ]) == 2
        assert "not a campaign store" in capsys.readouterr().err
