"""Tests for repro.units: date, number and unit parsing."""


import pytest

from repro.errors import FieldError
from repro.units import (
    MonthDate,
    format_month_date,
    format_number,
    parse_frequency_mhz,
    parse_int,
    parse_month_date,
    parse_number,
    parse_percent,
    parse_power_watts,
)


class TestMonthDate:
    def test_ordering(self):
        assert MonthDate(2012, 11) < MonthDate(2012, 12) < MonthDate(2013, 1)

    def test_equality(self):
        assert MonthDate(2020, 5) == MonthDate(2020, 5)
        assert MonthDate(2020, 5) != MonthDate(2020, 6)

    def test_decimal_year_midpoints(self):
        assert MonthDate(2020, 1).decimal_year == pytest.approx(2020 + 0.5 / 12)
        assert MonthDate(2020, 12).decimal_year == pytest.approx(2020 + 11.5 / 12)

    def test_months_since(self):
        assert MonthDate(2021, 3).months_since(MonthDate(2020, 12)) == 3
        assert MonthDate(2020, 12).months_since(MonthDate(2021, 3)) == -3

    def test_shift_forward_and_backward(self):
        assert MonthDate(2020, 11).shift(3) == MonthDate(2021, 2)
        assert MonthDate(2020, 1).shift(-1) == MonthDate(2019, 12)
        assert MonthDate(2020, 6).shift(0) == MonthDate(2020, 6)

    def test_invalid_month_rejected(self):
        with pytest.raises(FieldError):
            MonthDate(2020, 13)
        with pytest.raises(FieldError):
            MonthDate(2020, 0)

    def test_invalid_year_rejected(self):
        with pytest.raises(FieldError):
            MonthDate(1492, 1)

    def test_str_round_trip(self):
        date = MonthDate(2012, 12)
        assert parse_month_date(str(date)) == date


class TestParseMonthDate:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("Dec-2012", MonthDate(2012, 12)),
            ("Dec 2012", MonthDate(2012, 12)),
            ("December 2012", MonthDate(2012, 12)),
            ("jan-2007", MonthDate(2007, 1)),
            ("2012-12", MonthDate(2012, 12)),
            ("2012/7", MonthDate(2012, 7)),
            ("7/2012", MonthDate(2012, 7)),
            ("  Feb-2023  ", MonthDate(2023, 2)),
        ],
    )
    def test_accepted_formats(self, text, expected):
        assert parse_month_date(text) == expected

    @pytest.mark.parametrize("text", ["", "2012", "soon", "13/13", "Smarch-2012"])
    def test_rejected_formats(self, text):
        with pytest.raises(FieldError):
            parse_month_date(text)

    def test_format_month_date(self):
        assert format_month_date(MonthDate(2023, 8)) == "Aug-2023"


class TestNumbers:
    def test_parse_number_with_thousands_separators(self):
        assert parse_number("1,234,567.8") == pytest.approx(1234567.8)

    def test_parse_number_embedded_in_text(self):
        assert parse_number("approximately 42 watts") == 42

    def test_parse_number_rejects_text(self):
        with pytest.raises(FieldError):
            parse_number("no digits here")

    def test_parse_int(self):
        assert parse_int("2,048") == 2048

    def test_parse_int_rejects_fraction(self):
        with pytest.raises(FieldError):
            parse_int("3.5")

    def test_format_number_commas(self):
        assert format_number(1234567) == "1,234,567"

    def test_format_number_decimals(self):
        assert format_number(12.345, decimals=2) == "12.35"

    def test_format_number_nan(self):
        assert format_number(float("nan")) == "NC"


class TestUnits:
    def test_power_plain_watts(self):
        assert parse_power_watts("250") == 250

    def test_power_with_unit(self):
        assert parse_power_watts("250 W") == 250

    def test_power_kilowatts(self):
        assert parse_power_watts("1.1 kW") == pytest.approx(1100)

    def test_power_negative_rejected(self):
        with pytest.raises(FieldError):
            parse_power_watts("-5 W")

    def test_frequency_mhz(self):
        assert parse_frequency_mhz("2200 MHz") == 2200

    def test_frequency_ghz(self):
        assert parse_frequency_mhz("2.25 GHz") == pytest.approx(2250)

    def test_frequency_bare_small_value_is_ghz(self):
        assert parse_frequency_mhz("3.0") == pytest.approx(3000)

    def test_frequency_bare_large_value_is_mhz(self):
        assert parse_frequency_mhz("1900") == 1900

    def test_percent(self):
        assert parse_percent("99.8%") == pytest.approx(0.998)
