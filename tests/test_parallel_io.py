"""Tests for the parallel executor and the IO helpers."""


import pytest

from repro.errors import ReproError
from repro.frame import Frame
from repro.io import FrameCache, Workspace, cached_frame, ensure_dir
from repro.parallel import (
    ParallelConfig,
    chunk_indices,
    parallel_map,
    parallel_starmap,
    split_evenly,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _fail(x):
    raise ValueError(f"boom {x}")


class TestChunking:
    def test_chunk_indices_cover_range(self):
        chunks = chunk_indices(10, 3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunk_indices_empty(self):
        assert chunk_indices(0, 4) == []

    def test_chunk_indices_invalid(self):
        with pytest.raises(ReproError):
            chunk_indices(10, 0)

    def test_split_evenly_sizes(self):
        chunks = split_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_split_evenly_more_parts_than_items(self):
        chunks = split_evenly([1, 2], 4)
        assert len(chunks) == 4
        assert sum(chunks, []) == [1, 2]

    def test_split_evenly_invalid(self):
        with pytest.raises(ReproError):
            split_evenly([1], 0)


class TestParallelMap:
    def test_serial_order_preserved(self):
        assert parallel_map(_square, range(20)) == [i * i for i in range(20)]

    def test_thread_backend(self):
        config = ParallelConfig(backend="thread", max_workers=4, serial_threshold=0, chunk_size=3)
        assert parallel_map(_square, range(25), config) == [i * i for i in range(25)]

    def test_process_backend(self):
        config = ParallelConfig(backend="process", max_workers=2, serial_threshold=0, chunk_size=8)
        assert parallel_map(_square, range(30), config) == [i * i for i in range(30)]

    def test_starmap(self):
        assert parallel_starmap(_add, [(1, 2), (3, 4)]) == [3, 7]

    def test_exception_propagates(self):
        with pytest.raises(ValueError):
            parallel_map(_fail, [1, 2, 3])

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_invalid_backend_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(backend="gpu")

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(chunk_size=0)

    def test_effective_workers_serial(self):
        assert ParallelConfig(backend="serial").effective_workers == 1

    def test_effective_workers_default_positive(self):
        assert ParallelConfig().effective_workers >= 1


class TestWorkspace:
    def test_create_layout(self, tmp_path):
        workspace = Workspace.create(tmp_path / "ws")
        assert workspace.raw_results.is_dir()
        assert workspace.processed.is_dir()
        assert workspace.figures.is_dir()
        assert workspace.reports.is_dir()
        assert workspace.dataset_csv.parent == workspace.processed

    def test_ensure_dir_idempotent(self, tmp_path):
        target = tmp_path / "a" / "b"
        assert ensure_dir(target) == ensure_dir(target)
        assert target.is_dir()


class TestFrameCache:
    def test_put_and_get(self, tmp_path):
        cache = FrameCache(tmp_path)
        frame = Frame.from_dict({"x": [1, 2, 3]})
        cache.put("runs", {"seed": 1}, frame)
        loaded = cache.get("runs", {"seed": 1})
        assert loaded is not None
        assert loaded["x"].to_list() == [1, 2, 3]

    def test_get_miss_on_different_key(self, tmp_path):
        cache = FrameCache(tmp_path)
        cache.put("runs", {"seed": 1}, Frame.from_dict({"x": [1]}))
        assert cache.get("runs", {"seed": 2}) is None

    def test_clear(self, tmp_path):
        cache = FrameCache(tmp_path)
        cache.put("runs", {"seed": 1}, Frame.from_dict({"x": [1]}))
        assert cache.clear() >= 2
        assert cache.get("runs", {"seed": 1}) is None

    def test_cached_frame_builder_called_once(self, tmp_path):
        cache = FrameCache(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return Frame.from_dict({"x": [1]})

        cached_frame(cache, "runs", {"k": 1}, build)
        cached_frame(cache, "runs", {"k": 1}, build)
        assert len(calls) == 1

    def test_cached_frame_without_cache(self):
        frame = cached_frame(None, "runs", {}, lambda: Frame.from_dict({"x": [1]}))
        assert len(frame) == 1
