"""Lazy plan equivalence: ``LazyFrame.collect()`` vs the eager engines.

The planner's whole contract is that optimisation is invisible: whatever
chain of filters, projections, sorts, limits, group-bys and joins a plan
holds, ``collect()`` must be bit-identical to running the same chain
eagerly — under the vectorized kernels *and* under the scalar ``python``
oracle.  Hypothesis drives random frames (all four column kinds, missing
entries, NaN keys, colliding keys) and random predicate trees through
both routes; the explicit tests pin the optimizer rewrites (pushdown,
pruning, fusion, the join pruning barrier) and the expression API edges.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, GroupByError
from repro.frame import Frame, col, concat_lazy
from repro.frame.plan import (
    Filter,
    GroupByNode,
    JoinNode,
    Project,
    Scan,
    Sort,
    optimize,
)

settings.register_profile(
    "repro-plan", deadline=None, max_examples=80,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-plan")

#: Small pools maximise collisions (mirrors tests/test_frame_engines.py);
#: "a\x00" pins exact string equality through the planner too.
_KEY_POOLS = {
    "str": st.one_of(st.none(), st.sampled_from(["a", "b", "c", "", "a\x00"])),
    "int": st.one_of(st.none(), st.integers(min_value=-2, max_value=2)),
    "float": st.one_of(
        st.none(),
        st.sampled_from([float("nan"), -0.0, 0.0, 1.5, -2.5]),
    ),
    "bool": st.one_of(st.none(), st.booleans()),
}

_VALUES = st.one_of(
    st.none(), st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
)

_AGG_SPEC = {
    "mean": ("v", "mean"), "total": ("v", "sum"), "lo": ("v", "min"),
    "hi": ("v", "max"), "n": ("v", "count"), "rows": ("v", "size"),
    "head": ("v", "first"), "uniq": ("v", "nunique"),
}


@st.composite
def keyed_frames(draw, n_keys: int = 2):
    kinds = [draw(st.sampled_from(sorted(_KEY_POOLS))) for _ in range(n_keys)]
    n = draw(st.integers(min_value=0, max_value=30))
    data = {
        f"k{i}": [draw(_KEY_POOLS[kind]) for _ in range(n)]
        for i, kind in enumerate(kinds)
    }
    data["v"] = [draw(_VALUES) for _ in range(n)]
    data["w"] = [draw(_VALUES) for _ in range(n)]
    return Frame.from_dict(data), [f"k{i}" for i in range(n_keys)]


@st.composite
def predicates(draw, columns):
    """A random predicate tree plus its eager-mask evaluator.

    Returns ``(expr, eager)`` where ``expr`` is the plan expression and
    ``eager(frame)`` computes the identical boolean mask with the eager
    column operators only — so the two routes share no evaluation code.
    """
    depth = draw(st.integers(min_value=0, max_value=2))
    if depth == 0:
        name = draw(st.sampled_from(columns))
        form = draw(st.sampled_from(["cmp", "isin", "isna", "notna"]))
        if form == "cmp":
            op = draw(st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]))
            if op not in ("eq", "ne"):
                # Ordering a str/bool key against a float raises in every
                # engine; only the float column orders meaningfully.
                name = "v"
            value = draw(st.floats(min_value=-2.5, max_value=2.5, allow_nan=False))
            expr = {
                "eq": col(name) == value, "ne": col(name) != value,
                "lt": col(name) < value, "le": col(name) <= value,
                "gt": col(name) > value, "ge": col(name) >= value,
            }[op]
            return expr, lambda f, n=name, o=op, v=value: f[n]._compare(v, o)
        if form == "isin":
            pool = draw(
                st.lists(
                    st.sampled_from([0, 1, 1.5, "a", "b", True]),
                    min_size=0, max_size=3,
                )
            )
            return (
                col(name).isin(pool),
                lambda f, n=name, p=tuple(pool): f[n].isin(p),
            )
        if form == "isna":
            return col(name).isna(), lambda f, n=name: f[n].isna()
        return col(name).notna(), lambda f, n=name: f[n].notna()
    left_expr, left_eager = draw(predicates(columns))
    right_expr, right_eager = draw(predicates(columns))
    combo = draw(st.sampled_from(["and", "or", "not"]))
    if combo == "and":
        return (
            left_expr & right_expr,
            lambda f, a=left_eager, b=right_eager: a(f) & b(f),
        )
    if combo == "or":
        return (
            left_expr | right_expr,
            lambda f, a=left_eager, b=right_eager: a(f) | b(f),
        )
    return ~left_expr, lambda f, a=left_eager: ~a(f)


def assert_frames_identical(a: Frame, b: Frame) -> None:
    assert a.columns == b.columns
    assert len(a) == len(b)
    assert a.equals(b)
    for name in a.columns:
        assert a[name].kind == b[name].kind
        assert np.array_equal(a[name].mask, b[name].mask)


# --------------------------------------------------------------------------- #
# Hypothesis: random plans, three routes, one answer
# --------------------------------------------------------------------------- #
class TestPlanEquivalence:
    @given(keyed_frames(), st.data())
    def test_filter_select_sort_limit(self, frame_and_keys, data):
        frame, keys = frame_and_keys
        expr, eager_mask = data.draw(predicates(keys + ["v"]))
        subset = keys + data.draw(st.permutations(["v", "w"]))[:1]
        descending = data.draw(st.booleans())
        limit = data.draw(st.integers(min_value=0, max_value=10))

        eager = (
            frame.filter(eager_mask(frame))
            .select(subset)
            .sort_by(keys, descending=descending)
            .head(limit)
        )
        plan = (
            frame.lazy()
            .filter(expr)
            .select(subset)
            .sort_by(keys, descending=descending)
            .head(limit)
        )
        assert_frames_identical(plan.collect(), eager)
        assert_frames_identical(plan.collect(engine="python"), eager)
        assert_frames_identical(plan.collect(engine="lazy"), eager)

    @given(keyed_frames(), st.data())
    def test_filter_groupby_fusion(self, frame_and_keys, data):
        frame, keys = frame_and_keys
        expr, eager_mask = data.draw(predicates(keys + ["v"]))

        filtered = frame.filter(eager_mask(frame))
        eager_vec = filtered.groupby(keys, engine="vector").agg(_AGG_SPEC)
        eager_py = filtered.groupby(keys, engine="python").agg(_AGG_SPEC)
        assert_frames_identical(eager_vec, eager_py)

        plan = frame.lazy().filter(expr).groupby(keys).agg(_AGG_SPEC)
        assert_frames_identical(plan.collect(engine="vector"), eager_vec)
        assert_frames_identical(plan.collect(engine="python"), eager_vec)

    @given(keyed_frames(n_keys=1), keyed_frames(n_keys=1), st.data())
    def test_join_then_filter(self, left_and_keys, right_and_keys, data):
        from repro.frame import join

        left, keys = left_and_keys
        right, _ = right_and_keys
        how = data.draw(st.sampled_from(["inner", "left"]))

        eager = join(left, right, on=keys, how=how)
        plan = left.lazy().join(right.lazy(), on=keys, how=how)
        assert_frames_identical(plan.collect(), eager)
        assert_frames_identical(plan.collect(engine="python"), eager)

        expr, eager_mask = data.draw(predicates(["v"]))
        filtered = eager.filter(eager_mask(eager))
        lazy_filtered = plan.filter(expr)
        assert_frames_identical(lazy_filtered.collect(), filtered)
        assert_frames_identical(lazy_filtered.collect(engine="python"), filtered)

    @given(st.lists(keyed_frames(n_keys=1), min_size=1, max_size=3), st.data())
    def test_concat_filter_distribution(self, frames_and_keys, data):
        from repro.frame import concat

        frames = [frame for frame, _ in frames_and_keys]
        expr, eager_mask = data.draw(predicates(["k0", "v"]))

        whole = concat(frames)
        eager = whole.filter(eager_mask(whole))
        plan = concat_lazy([frame.lazy() for frame in frames]).filter(expr)
        assert_frames_identical(plan.collect(), eager)
        assert_frames_identical(plan.collect(engine="python"), eager)


# --------------------------------------------------------------------------- #
# Optimizer rewrites
# --------------------------------------------------------------------------- #
class TestOptimizer:
    def _frame(self):
        return Frame.from_dict(
            {
                "k": ["a", "b", "a", None, "c"],
                "v": [1.0, 2.0, None, 4.0, 5.0],
                "w": [10.0, None, 30.0, 40.0, 50.0],
            }
        )

    def test_filter_pushes_into_scan(self):
        plan = self._frame().lazy().filter(col("v") > 1.0)
        node = optimize(plan.node)
        assert isinstance(node, Scan)
        assert node.predicate is not None

    def test_consecutive_filters_merge(self):
        plan = self._frame().lazy().filter(col("v") > 1.0).filter(col("w") < 45.0)
        node = optimize(plan.node)
        assert isinstance(node, Scan)  # both conjuncts reached the scan
        assert "and" in repr(node.predicate).lower() or "&" in repr(node.predicate)

    def test_projection_prunes_scan_columns(self):
        plan = self._frame().lazy().select(["k"])
        node = optimize(plan.node)
        scan = node.child if isinstance(node, Project) else node
        assert isinstance(scan, Scan)
        assert scan.columns == ("k",)

    def test_pruned_scan_keeps_predicate_out_of_output(self):
        plan = self._frame().lazy().filter(col("v") > 1.0).select(["k"])
        node = optimize(plan.node)
        scan = node
        while not isinstance(scan, Scan):
            scan = scan.child
        # The scan outputs only "k"; the predicate column is read
        # internally on the first pass without widening the output.
        assert scan.columns == ("k",)
        assert scan.predicate is not None

    def test_filter_does_not_cross_projection_that_drops_its_column(self):
        # select(["k"]) then filter on "k" is fine; but a filter written
        # *above* a projection may only sink when its columns survive.
        plan = self._frame().lazy().select(["k", "v"]).filter(col("v") > 1.0)
        node = optimize(plan.node)
        assert isinstance(node, (Scan, Project))  # sank through

    def test_join_is_a_pruning_barrier(self):
        left = self._frame().lazy()
        right = Frame.from_dict({"k": ["a", "b"], "z": [1.0, 2.0]}).lazy()
        plan = left.join(right, on=["k"]).select(["k", "z"])
        node = optimize(plan.node)
        join_node = node
        while not isinstance(join_node, JoinNode):
            join_node = join_node.child if hasattr(join_node, "child") else join_node.left
        # Children keep every column: pruning join inputs could rename
        # outputs via the _right-suffix rule.
        for side in (join_node.left, join_node.right):
            scan = side
            while not isinstance(scan, Scan):
                scan = scan.child
            assert scan.columns is None

    def test_filter_never_crosses_groupby_or_limit(self):
        plan = (
            self._frame().lazy().groupby(["k"]).agg({"m": ("v", "mean")})
        ).filter(col("m") > 0.0)
        node = optimize(plan.node)
        assert isinstance(node, Filter)
        assert isinstance(node.child, GroupByNode)

        limited = self._frame().lazy().head(2).filter(col("v") > 1.0)
        node = optimize(limited.node)
        assert isinstance(node, Filter)  # stayed above the limit

    def test_filter_sinks_below_sort(self):
        plan = self._frame().lazy().sort_by(["k"]).filter(col("v") > 1.0)
        node = optimize(plan.node)
        assert isinstance(node, Sort)  # filter passed through it

    def test_filter_distributes_over_homogeneous_concat_only(self):
        same_a = Frame.from_dict({"k": ["a"], "v": [1.0]})
        same_b = Frame.from_dict({"k": ["b"], "v": [2.0]})
        plan = concat_lazy([same_a.lazy(), same_b.lazy()]).filter(col("v") > 1.0)
        node = optimize(plan.node)
        assert not isinstance(node, Filter)  # sank into the scans
        for child in node.children:
            assert isinstance(child, Scan) and child.predicate is not None

        # Mixed kinds for "k": eager concat re-infers the kind from the
        # union of values, so the filter must stay above the concat.
        mixed = Frame.from_dict({"k": [1], "v": [3.0]})
        plan = concat_lazy([same_a.lazy(), mixed.lazy()]).filter(col("v") > 1.0)
        node = optimize(plan.node)
        assert isinstance(node, Filter)

    def test_explain_marks_rewrites(self):
        plan = self._frame().lazy().filter(col("v") > 1.0).select(["k"])
        text = plan.explain()
        assert "pushdown=" in text
        unoptimized = plan.explain(optimized=False)
        assert "Filter" in unoptimized


# --------------------------------------------------------------------------- #
# Expression / API edges
# --------------------------------------------------------------------------- #
class TestExprApi:
    def test_truthiness_is_an_error(self):
        with pytest.raises(FrameError):
            bool(col("a") == 1)
        with pytest.raises(FrameError):
            (col("a") == 1) and (col("b") == 2)  # noqa: B015

    def test_filter_requires_expression(self):
        frame = Frame.from_dict({"a": [1, 2]})
        with pytest.raises(FrameError):
            frame.lazy().filter(True)

    def test_groupby_requires_keys(self):
        frame = Frame.from_dict({"a": [1, 2]})
        with pytest.raises(GroupByError):
            frame.lazy().groupby([])

    def test_missing_column_surfaces_on_collect(self):
        frame = Frame.from_dict({"a": [1, 2]})
        plan = frame.lazy().filter(col("nope") == 1)
        with pytest.raises(FrameError):
            plan.collect()

    def test_collect_is_repeatable(self):
        frame = Frame.from_dict({"a": [3, 1, 2], "b": [1.0, None, 3.0]})
        plan = frame.lazy().filter(col("a") > 1).sort_by(["a"])
        assert_frames_identical(plan.collect(), plan.collect())

    def test_empty_concat_collects_empty(self):
        collected = concat_lazy([]).collect()
        assert len(collected) == 0
