"""The observability plane: sketches, metrics, tracing, profiling, alerts."""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.reduce import FrameReducer, reduce_frame
from repro.errors import StatsError
from repro.frame import Frame
from repro.market.anomalies import AnomalyKind
from repro.obs import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    QuantileSketch,
    StreamingHistogram,
    Tracer,
)
from repro.obs.alerts import (
    AlertEngine,
    DriftRule,
    ThresholdRule,
    classify_failure,
    default_watch_rules,
)
from repro.obs.profile import aggregate_spans, load_events, render_profile
from repro.obs.sketch import quantile_label
from repro.obs.trace import JsonlSink, NullSpan, tracing_env_enabled

settings.register_profile(
    "repro-obs", deadline=None, max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-obs")


# --------------------------------------------------------------------------- #
# Quantile sketches
# --------------------------------------------------------------------------- #
class TestQuantileLabel:
    def test_common_labels(self):
        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.9) == "p90"
        assert quantile_label(0.99) == "p99"

    def test_fractional_label_has_no_dots(self):
        assert "." not in quantile_label(0.999)


class TestQuantileSketchExactPhase:
    def test_matches_numpy_exactly_below_buffer(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=200)
        sketch = QuantileSketch()
        sketch.update(values)
        assert not sketch.compressed
        for q in (0.5, 0.9, 0.99):
            assert sketch.estimate(q) == float(np.quantile(values, q))

    def test_skips_none_nan_and_masked(self):
        sketch = QuantileSketch()
        sketch.update([1.0, None, float("nan"), float("inf"), 3.0])
        assert sketch.count == 2
        mask = np.array([False, True, False])
        sketch2 = QuantileSketch()
        sketch2.update(np.array([1.0, 2.0, 3.0]), mask=mask)
        assert sketch2.count == 2

    def test_empty_sketch_estimates_nan(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.estimate(0.5))

    def test_untracked_quantile_rejected_after_compression(self):
        sketch = QuantileSketch(quantiles=(0.5,), buffer_size=8)
        sketch.update(range(20))
        assert sketch.compressed
        with pytest.raises(StatsError):
            sketch.estimate(0.25)

    def test_validation(self):
        with pytest.raises(StatsError):
            QuantileSketch(quantiles=())
        with pytest.raises(StatsError):
            QuantileSketch(quantiles=(1.5,))
        with pytest.raises(StatsError):
            QuantileSketch(buffer_size=2)


class TestQuantileSketchCompressed:
    def test_compression_point(self):
        sketch = QuantileSketch(buffer_size=16)
        sketch.update(range(16))
        assert not sketch.compressed
        sketch.push(99.0)
        assert sketch.compressed

    def test_estimates_converge_on_large_stream(self):
        rng = np.random.default_rng(11)
        values = rng.normal(loc=5.0, scale=2.0, size=20_000)
        sketch = QuantileSketch()
        sketch.update(values)
        assert sketch.compressed
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            assert sketch.estimate(q) == pytest.approx(exact, abs=0.15)

    def test_chunking_is_bit_invariant(self):
        """Shard boundaries must not be observable in the estimates."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=1500)
        whole = QuantileSketch()
        whole.update(values)
        chunked = QuantileSketch()
        for start in range(0, len(values), 113):
            chunked.update(values[start : start + 113])
        for q in (0.5, 0.9, 0.99):
            assert whole.estimate(q) == chunked.estimate(q)

    def test_p2_startup_below_five_values(self):
        p2 = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            p2.push(value)
        assert p2.estimate() == 2.0  # exact median of the startup buffer


class TestQuantileSketchMerge:
    def test_exact_merge_equals_sorted_union(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.update([5.0, 1.0, 3.0])
        b.update([2.0, 4.0])
        merged = a.merge(b)
        union = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert merged.count == 5
        for q in (0.5, 0.9, 0.99):
            assert merged.estimate(q) == float(np.quantile(union, q))

    def test_mismatched_quantiles_rejected(self):
        with pytest.raises(StatsError):
            QuantileSketch(quantiles=(0.5,)).merge(QuantileSketch(quantiles=(0.9,)))

    def test_merge_with_empty_is_identity(self):
        a = QuantileSketch()
        a.update([1.0, 2.0, 3.0])
        merged = a.merge(QuantileSketch())
        assert merged.estimate(0.5) == a.estimate(0.5)

    def test_compressed_merge_is_deterministic_and_close(self):
        rng = np.random.default_rng(17)
        left = rng.normal(size=2000)
        right = rng.normal(size=3000)
        a, b = QuantileSketch(), QuantileSketch()
        a.update(left)
        b.update(right)
        merged1, merged2 = a.merge(b), a.merge(b)
        union = np.concatenate([left, right])
        for q in (0.5, 0.9, 0.99):
            assert merged1.estimate(q) == merged2.estimate(q)
            assert merged1.estimate(q) == pytest.approx(
                float(np.quantile(union, q)), abs=0.25
            )

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=0, max_size=80,
        ),
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=0, max_size=80,
        ),
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1, max_size=80,
        ),
    )
    def test_exact_merge_associativity_vs_sorted_array(self, xs, ys, zs):
        """(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) == np.quantile of the union.

        Sizes are capped so every merge stays in the exact phase, where the
        contract is bit-exact agreement with the sorted-array reference.
        """
        def sketch_of(values):
            s = QuantileSketch()
            s.update(values)
            return s

        a, b, c = sketch_of(xs), sketch_of(ys), sketch_of(zs)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        union = np.array(sorted(xs + ys + zs))
        for q in (0.5, 0.9, 0.99):
            expected = float(np.quantile(union, q))
            assert left.estimate(q) == expected
            assert right.estimate(q) == expected


# --------------------------------------------------------------------------- #
# FrameReducer quantile integration
# --------------------------------------------------------------------------- #
class TestReducerQuantiles:
    def test_summary_frame_has_quantile_columns(self):
        frame = Frame.from_dict({"value": [1.0, 2.0, 3.0, 4.0], "name": list("abcd")})
        summary = reduce_frame(frame)
        assert {"p50", "p90", "p99"} <= set(summary.columns)
        row = summary.to_records()[0]
        assert row["column"] == "value"
        assert row["p50"] == float(np.quantile([1.0, 2.0, 3.0, 4.0], 0.5))

    def test_quantiles_off(self):
        frame = Frame.from_dict({"value": [1.0, 2.0]})
        summary = reduce_frame(frame, quantiles=())
        assert "p50" not in summary.columns

    def test_streamed_equals_whole_with_quantiles(self):
        rng = np.random.default_rng(5)
        frame = Frame.from_dict({"value": rng.normal(size=700).tolist()})
        streamed = FrameReducer()
        for start in range(0, 700, 97):
            chunk = frame.take(np.arange(start, min(start + 97, 700)))
            streamed.update(chunk)
        assert streamed.to_frame().equals(reduce_frame(frame))

    def test_reducer_merge_combines_counts_and_sketches(self):
        left = Frame.from_dict({"value": [1.0, 2.0]})
        right = Frame.from_dict({"value": [3.0, 4.0], "other": [5.0, 6.0]})
        a, b = FrameReducer(), FrameReducer()
        a.update(left)
        b.update(right)
        merged = a.merge(b)
        assert merged.n_rows == 4
        assert merged["value"].count == 4
        assert merged["other"].count == 2
        assert merged.sketch("value").count == 4
        assert merged.sketch("value").estimate(0.5) == 2.5

    def test_reducer_merge_quantile_mismatch_rejected(self):
        with pytest.raises(StatsError):
            FrameReducer(quantiles=(0.5,)).merge(FrameReducer())


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter(self):
        c = Counter("units")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(StatsError):
            c.inc(-1)

    def test_gauge_merge_last_wins(self):
        a, b = Gauge("rate"), Gauge("rate")
        a.set(1.0)
        b.set(2.0)
        a.merge(b)
        assert a.value == 2.0
        a.merge(Gauge("rate"))  # unset gauge leaves the value alone
        assert a.value == 2.0

    def test_histogram_binning(self):
        h = StreamingHistogram("lat", edges=[0.0, 1.0, 2.0])
        h.update([0.5, 1.0, 1.5, 2.0, -1.0, 5.0, float("nan"), None])
        assert h.counts == [1, 3]  # 2.0 lands in the closed last bin
        assert h.underflow == 1 and h.overflow == 1
        assert h.total == 6

    def test_histogram_merge_and_to_histogram(self):
        from repro.stats.distribution import Histogram

        a = StreamingHistogram("lat", edges=[0.0, 1.0, 2.0])
        b = StreamingHistogram("lat", edges=[0.0, 1.0, 2.0])
        a.update([0.5])
        b.update([1.5])
        a.merge(b)
        assert a.counts == [1, 1]
        hist = a.to_histogram()
        assert isinstance(hist, Histogram)
        assert hist.counts == (1, 1)
        with pytest.raises(StatsError):
            a.merge(StreamingHistogram("lat", edges=[0.0, 2.0, 4.0]))

    def test_histogram_edge_validation(self):
        with pytest.raises(StatsError):
            StreamingHistogram("x", edges=[1.0])
        with pytest.raises(StatsError):
            StreamingHistogram("x", edges=[1.0, 1.0])

    def test_registry_roundtrip_and_merge(self):
        a = MetricsRegistry()
        a.counter("units").inc(3)
        a.gauge("rate").set(7.5)
        a.histogram("lat", edges=[0.0, 1.0]).push(0.5)
        b = MetricsRegistry()
        b.counter("units").inc(2)
        b.histogram("lat", edges=[0.0, 1.0]).push(0.25)
        a.merge(b)
        snapshot = a.snapshot()
        assert snapshot["units"] == 5.0
        assert snapshot["rate"] == 7.5
        assert snapshot["lat"]["counts"] == [2]
        assert "units" in a and len(a) == 3

    def test_registry_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(StatsError):
            registry.gauge("x")
        with pytest.raises(StatsError):
            registry.histogram("missing")  # needs edges on first use


# --------------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NullSpan
        assert span is tracer.span("other")
        with span as s:
            s.set("k", "v")
            s.incr("n")

    def test_spans_nest_and_emit(self, tmp_path):
        tracer = Tracer(enabled=True)
        sink = tracer.add_sink(JsonlSink(tmp_path / "events.jsonl"))
        with tracer.span("outer", layer=1) as outer:
            with tracer.span("inner") as inner:
                inner.incr("count", 2)
            outer.set("done", True)
        tracer.event("flush", index=3)
        tracer.remove_sink(sink)
        records = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        by_name = {r.get("name", r["event"]): r for r in records}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert inner["attrs"]["count"] == 2
        assert outer["attrs"] == {"layer": 1, "done": True}
        assert outer["wall_s"] >= inner["wall_s"] >= 0
        assert outer["cpu_s"] >= 0
        assert by_name["flush"]["index"] == 3
        # inner closed (and so emitted) before outer
        assert records[0]["name"] == "inner"

    def test_error_status_recorded(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.add_sink(JsonlSink(tmp_path / "e.jsonl"))
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        record = json.loads((tmp_path / "e.jsonl").read_text())
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"

    def test_threads_get_independent_span_stacks(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.add_sink(JsonlSink(tmp_path / "t.jsonl"))
        parents = {}

        def worker(name):
            with tracer.span(name) as span:
                parents[name] = span.parent_id

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(f"w{i}",)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker spans are thread roots, not children of main-root
        assert all(parent is None for parent in parents.values())

    def test_env_enablement(self):
        assert not tracing_env_enabled({})
        assert tracing_env_enabled({"REPRO_TRACE": "1"})
        assert tracing_env_enabled({"REPRO_PROFILE": "true"})
        assert not tracing_env_enabled({"REPRO_TRACE": "0"})


# --------------------------------------------------------------------------- #
# Profiling
# --------------------------------------------------------------------------- #
def _span(name, span_id, parent_id, wall, cpu=0.0, attrs=None):
    record = {
        "event": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "wall_s": wall,
        "cpu_s": cpu,
    }
    if attrs:
        record["attrs"] = attrs
    return record


class TestProfile:
    def test_self_time_subtracts_direct_children(self):
        events = [
            _span("child", 2, 1, 0.4),
            _span("child", 3, 1, 0.3),
            _span("parent", 1, None, 1.0, attrs={"units": 7}),
        ]
        stats = aggregate_spans(events)
        assert stats["parent"].self_s == pytest.approx(0.3)
        assert stats["child"].self_s == pytest.approx(0.7)
        assert stats["parent"].attrs["units"] == 7

    def test_self_time_never_negative(self):
        events = [_span("child", 2, 1, 2.0), _span("parent", 1, None, 1.0)]
        assert aggregate_spans(events)["parent"].self_s == 0.0

    def test_render_orders_by_self_time(self):
        events = [
            _span("cold", 1, None, 0.1),
            _span("hot", 2, None, 5.0),
        ]
        table = render_profile(aggregate_spans(events), top=5)
        lines = table.splitlines()
        assert lines[2].startswith("hot")
        assert "cold" in lines[3]
        assert render_profile({}) == "(no span events)"

    def test_top_truncation_mentions_remainder(self):
        events = [_span(f"s{i}", i + 1, None, float(i + 1)) for i in range(5)]
        table = render_profile(aggregate_spans(events), top=2)
        assert "3 more span name" in table

    def test_load_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "span"}\n{"torn\n\n{"event": "x"}\n')
        events = list(load_events(path))
        assert [e["event"] for e in events] == ["span", "x"]

    def test_load_events_missing_file(self, tmp_path):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            list(load_events(tmp_path / "absent.jsonl"))


# --------------------------------------------------------------------------- #
# Alerts
# --------------------------------------------------------------------------- #
class TestAlerts:
    def test_threshold_rule(self):
        rule = ThresholdRule("failed", 0.0, ">")
        assert rule.check({"failed": 0}) is None
        alert = rule.check({"failed": 2}, shard=4)
        assert alert is not None and alert.shard == 4
        assert rule.check({}) is None  # missing metric never fires
        below = ThresholdRule("rate", 10.0, "<")
        assert below.check({"rate": 5.0}) is not None

    def test_drift_fires_on_outlier_after_history(self):
        engine = AlertEngine(drifts=(DriftRule("wall_s", z_max=3.0, min_history=3),))
        for value in (1.0, 1.1, 0.9, 1.05):
            assert engine.observe({"wall_s": value}) == []
        raised = engine.observe({"wall_s": 50.0}, shard=4)
        assert len(raised) == 1
        assert raised[0].kind == "drift" and raised[0].shard == 4

    def test_drift_ignores_non_finite_and_builds_no_history_from_them(self):
        engine = AlertEngine(drifts=(DriftRule("x", min_history=2),))
        engine.observe({"x": float("nan")})
        engine.observe({"x": 1.0})
        engine.observe({"x": 1.0})
        engine.observe({"x": 1.0})
        assert engine.observe({"x": 1.0}) == []  # zero variance: no z-score

    def test_default_rules_flag_failed_shards(self):
        thresholds, drifts = default_watch_rules()
        engine = AlertEngine(thresholds, drifts)
        raised = engine.observe({"failed": 3}, shard=0)
        assert [a.kind for a in raised] == ["threshold"]

    def test_classify_failure_maps_to_paper_taxonomy(self):
        assert classify_failure("run not accepted by SPEC") is AnomalyKind.NOT_ACCEPTED
        assert classify_failure("Ambiguous CPU name") is AnomalyKind.AMBIGUOUS_CPU
        assert (
            classify_failure("inconsistent core/thread counts")
            is AnomalyKind.INCONSISTENT_CORE_THREAD
        )
        assert classify_failure("some novel explosion") is None
