"""Tests for CSV I/O and vectorised frame ops."""

import numpy as np
import pytest

from repro.errors import CSVError, FrameError
from repro.frame import Column, Frame, read_csv
from repro.frame.csvio import frame_from_csv_text, frame_to_csv_text
from repro.frame.ops import and_masks, clip, cut, not_mask, or_masks, ratio


class TestCSV:
    def test_round_trip(self, tiny_frame, tmp_path):
        path = tmp_path / "frame.csv"
        tiny_frame.to_csv(path)
        loaded = read_csv(path)
        assert loaded.columns == tiny_frame.columns
        assert loaded["power"].to_list() == tiny_frame["power"].to_list()
        assert loaded["vendor"].to_list() == tiny_frame["vendor"].to_list()

    def test_round_trip_preserves_int_kind(self, tiny_frame, tmp_path):
        path = tmp_path / "frame.csv"
        tiny_frame.to_csv(path)
        assert read_csv(path)["year"].kind == "int"

    def test_bool_round_trip(self, tmp_path):
        frame = Frame.from_dict({"flag": [True, False, None]})
        text = frame_to_csv_text(frame)
        loaded = frame_from_csv_text(text)
        assert loaded["flag"].kind == "bool"
        assert loaded["flag"].to_list() == [True, False, None]

    def test_missing_tokens(self):
        frame = frame_from_csv_text("a,b\n1,NA\n2,3\n")
        assert frame["b"].to_list() == [None, 3]

    def test_string_with_comma_quoted(self, tmp_path):
        frame = Frame.from_dict({"name": ["Dell, Inc.", "HPE"]})
        path = tmp_path / "quoted.csv"
        frame.to_csv(path)
        assert read_csv(path)["name"].to_list() == ["Dell, Inc.", "HPE"]

    def test_duplicate_header_rejected(self):
        with pytest.raises(CSVError):
            frame_from_csv_text("a,a\n1,2\n")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CSVError):
            read_csv(tmp_path / "absent.csv")

    def test_empty_text_gives_empty_frame(self):
        assert len(frame_from_csv_text("")) == 0

    def test_scientific_notation_parses_as_float(self):
        frame = frame_from_csv_text("x\n1e3\n2e3\n")
        assert frame["x"].kind == "float"
        assert frame["x"].to_list() == [1000.0, 2000.0]


class TestMasks:
    def test_and_or_not(self):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        assert and_masks(a, b).tolist() == [True, False, False]
        assert or_masks(a, b).tolist() == [True, True, False]
        assert not_mask(a).tolist() == [False, False, True]

    def test_empty_mask_list_rejected(self):
        with pytest.raises(FrameError):
            and_masks()

    def test_masks_do_not_mutate_inputs(self):
        a = np.array([True, False])
        and_masks(a, np.array([False, False]))
        assert a.tolist() == [True, False]


class TestCut:
    def test_basic_binning(self):
        column = Column.from_values([2005.5, 2010.2, 2023.9])
        binned = cut(column, [2005, 2010, 2015, 2025], labels=["early", "mid", "late"])
        assert binned.to_list() == ["early", "mid", "late"]

    def test_out_of_range_is_missing(self):
        binned = cut(Column.from_values([1999.0]), [2005, 2010])
        assert binned[0] is None

    def test_value_on_last_edge_included(self):
        binned = cut(Column.from_values([2010.0]), [2005, 2010], labels=["bin"])
        assert binned[0] == "bin"

    def test_unsorted_edges_rejected(self):
        with pytest.raises(FrameError):
            cut(Column.from_values([1.0]), [2, 1])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(FrameError):
            cut(Column.from_values([1.0]), [0, 1, 2], labels=["only-one"])


class TestRatioClip:
    def test_ratio(self):
        result = ratio(Column.from_values([10.0, 20.0]), Column.from_values([2.0, 4.0]))
        assert result.to_list() == [5.0, 5.0]

    def test_ratio_zero_denominator_missing(self):
        result = ratio(Column.from_values([10.0]), Column.from_values([0.0]))
        assert result[0] is None

    def test_ratio_missing_propagates(self):
        result = ratio(Column.from_values([None]), Column.from_values([2.0]))
        assert result[0] is None

    def test_clip(self):
        clipped = clip(Column.from_values([-1.0, 0.5, 9.0]), low=0.0, high=1.0)
        assert clipped.to_list() == [0.0, 0.5, 1.0]

    def test_clip_keeps_missing(self):
        assert clip(Column.from_values([None]), low=0.0)[0] is None
