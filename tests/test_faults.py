"""Failure-domain hardening: fault injection, retry/quarantine, recovery.

The contract under test is the acceptance invariant of the robustness
layer: a campaign executed with faults injected at every hook site
completes — through per-unit retry, poison-unit quarantine, and the
checksum/recovery machinery — with results *bit-identical* to a clean
serial run on every non-quarantined unit.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    doctor_store,
    resume_streaming,
    run_worker,
    stream_campaign,
)
from repro.errors import CampaignError, InjectedFault
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_fault_plan,
    clear_fault_plan,
    fault_plan_from_env,
    fault_point,
    install_fault_plan,
    resolve_fault_plan,
)
from repro.session.policy import ExecutionPolicy

GENERATIONS = ["Xeon X5670", "EPYC 9654"]
FAST_BASE = {"load_levels": [1.0, 0.5, 0.0]}

#: Backoff tuned for tests: real retry rounds, negligible sleeping.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_cap=0.002)


def fault_spec(name="fault-test", seeds=(1, 2, 3)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": GENERATIONS, "seed": list(seeds)},
        base=FAST_BASE,
    )


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """Every test starts and ends with no fault plan installed."""
    clear_fault_plan()
    yield
    clear_fault_plan()


# --------------------------------------------------------------------------- #
# FaultPlan mechanics
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_nth_trigger_fires_exactly_once(self):
        plan = FaultPlan([FaultRule(site="s", kind="raise", nth=3)])
        assert plan.check("s") is None and plan.check("s") is None
        assert plan.check("s").kind == "raise"
        assert plan.check("s") is None
        assert plan.fired == [("s", "raise", 3)]
        assert plan.counters["s"] == 4

    def test_probability_schedule_is_deterministic(self):
        def schedule(seed):
            plan = FaultPlan(
                [FaultRule(site="s", kind="raise", probability=0.5)], seed=seed
            )
            return [plan.check("s") is not None for _ in range(64)]

        first = schedule(7)
        assert schedule(7) == first  # same seed -> same replay
        assert schedule(8) != first  # different seed -> different draw
        assert 10 < sum(first) < 54  # and it is actually probabilistic

    def test_times_caps_total_firings(self):
        plan = FaultPlan([FaultRule(site="s", kind="delay", times=2)])
        fired = [plan.check("s") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_where_matches_context_substring(self):
        plan = FaultPlan([FaultRule(site="s", kind="raise", where="poison")])
        assert plan.check("s", ctx="healthy-unit") is None
        assert plan.check("s", ctx="the-poison-unit") is not None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [
                FaultRule(site="s", kind="delay", nth=1),
                FaultRule(site="s", kind="raise"),
            ]
        )
        assert plan.check("s").kind == "delay"
        assert plan.check("s").kind == "raise"

    def test_invalid_rules_rejected(self):
        with pytest.raises(CampaignError, match="kind"):
            FaultRule(site="s", kind="explode")
        with pytest.raises(CampaignError, match="nth"):
            FaultRule(site="s", kind="raise", nth=0)
        with pytest.raises(CampaignError, match="probability"):
            FaultRule(site="s", kind="raise", probability=1.5)
        with pytest.raises(CampaignError, match="fraction"):
            FaultRule(site="s", kind="partial_write", fraction=1.0)
        with pytest.raises(CampaignError, match="unknown fault rule fields"):
            FaultRule.from_dict({"site": "s", "kind": "raise", "bogus": 1})
        with pytest.raises(CampaignError, match="site"):
            FaultRule.from_dict({"kind": "raise"})

    def test_dict_roundtrip(self):
        plan = FaultPlan(
            [
                FaultRule(site="a", kind="raise", nth=2, times=1),
                FaultRule(site="b", kind="partial_write", fraction=0.25),
                FaultRule(site="c", kind="delay", delay_s=0.5, where="x"),
            ],
            seed=11,
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()
        assert again.seed == 11 and len(again.rules) == 3

    def test_resolve_inline_json_file_and_errors(self, tmp_path):
        data = {"seed": 3, "rules": [{"site": "s", "kind": "raise", "nth": 1}]}
        inline = resolve_fault_plan(json.dumps(data))
        assert inline.seed == 3 and inline.rules[0].site == "s"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        from_file = resolve_fault_plan(str(path))
        assert from_file.to_dict() == inline.to_dict()
        with pytest.raises(CampaignError, match="cannot read fault plan file"):
            resolve_fault_plan(str(tmp_path / "missing.json"))
        with pytest.raises(CampaignError, match="malformed"):
            resolve_fault_plan("{not json")
        listing = tmp_path / "list.json"
        listing.write_text("[1]", encoding="utf-8")
        with pytest.raises(CampaignError, match="JSON object"):
            resolve_fault_plan(str(listing))

    def test_install_returns_previous_and_clear(self):
        first = FaultPlan()
        second = FaultPlan()
        assert install_fault_plan(first) is None
        assert install_fault_plan(second) is first
        assert active_fault_plan() is second
        clear_fault_plan()
        assert active_fault_plan() is None

    def test_env_resolution(self):
        assert fault_plan_from_env({}) is None
        assert fault_plan_from_env({"REPRO_FAULTS": "  "}) is None
        plan = fault_plan_from_env(
            {"REPRO_FAULTS": '{"rules": [{"site": "s", "kind": "kill"}]}'}
        )
        assert plan.rules[0].kind == "kill"

    def test_fault_point_disabled_is_noop(self):
        assert fault_point("unit.execute", ctx="anything") is None

    def test_fault_point_raise_delay_and_partial(self):
        install_fault_plan(
            FaultPlan(
                [
                    FaultRule(site="a", kind="raise", nth=1),
                    FaultRule(site="b", kind="delay", nth=1, delay_s=0.02),
                    FaultRule(site="c", kind="partial_write", nth=1, fraction=0.3),
                ]
            )
        )
        with pytest.raises(InjectedFault, match="injected fault at a"):
            fault_point("a", ctx="ctx")
        start = time.perf_counter()
        assert fault_point("b") is None  # delay is applied, nothing returned
        assert time.perf_counter() - start >= 0.015
        rule = fault_point("c")
        assert rule is not None and rule.fraction == 0.3

    def test_kind_table_is_closed(self):
        assert FAULT_KINDS == ("raise", "partial_write", "delay", "kill")


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.35, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.35, 0.35]
        assert policy.delay(0) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, jitter=0.5)
        first = policy.delay(3, salt="shard0")
        assert policy.delay(3, salt="shard0") == first
        assert policy.delay(3, salt="shard1") != first
        assert 0.2 <= first <= 0.4  # full backoff 0.4, jitter strips <= half

    def test_invalid_policies_rejected(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CampaignError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(CampaignError):
            RetryPolicy(jitter=1.5)


# --------------------------------------------------------------------------- #
# Chaos matrix: every site x kind, bit-identical after recovery
# --------------------------------------------------------------------------- #
#: (label, rules) — each plan injects at one hook site; the campaign must
#: still converge to the clean run's exact bytes after retry + resume.
CHAOS_CASES = [
    (
        "unit-execute-raise-nth",
        [{"site": "unit.execute", "kind": "raise", "nth": 2}],
    ),
    (
        "unit-execute-raise-burst",
        [{"site": "unit.execute", "kind": "raise", "probability": 1.0, "times": 2}],
    ),
    (
        "unit-execute-delay",
        [{"site": "unit.execute", "kind": "delay", "nth": 1, "delay_s": 0.01}],
    ),
    (
        "batch-run-raise",
        [{"site": "batch.run", "kind": "raise", "nth": 1}],
    ),
    (
        "shard-flush-partial-write",
        [{"site": "shard.flush", "kind": "partial_write", "nth": 1, "fraction": 0.4}],
    ),
    (
        "ledger-append-partial-write",
        [
            {
                "site": "jsonl.append",
                "kind": "partial_write",
                "nth": 2,
                "where": "ledger",
                "fraction": 0.5,
            }
        ],
    ),
]


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    """The reference: one clean serial streamed run of the chaos spec."""
    store_dir = tmp_path_factory.mktemp("clean-store")
    result = stream_campaign(fault_spec(), store_dir, shard_size=4)
    assert result.is_complete and not result.failures
    return result


class TestChaosMatrix:
    @pytest.mark.parametrize("label,rules", CHAOS_CASES, ids=[c[0] for c in CHAOS_CASES])
    def test_faulty_run_recovers_bit_identical(self, tmp_path, clean_run, label, rules):
        plan = FaultPlan.from_dict({"seed": 5, "rules": rules})
        policy = ExecutionPolicy(faults=plan, retry=FAST_RETRY)
        faulty = stream_campaign(
            fault_spec(), tmp_path / "faulty", shard_size=4, policy=policy,
            retry=FAST_RETRY,
        )
        # The scoped plan is uninstalled once the run returns.
        assert active_fault_plan() is None
        assert not faulty.quarantined  # every injected failure was transient
        # A plain resume heals anything the faults tore (checksum-mismatch
        # artifacts re-execute from the unit cache, torn ledger lines are
        # simply re-simulated); for most cases it reloads everything.
        resumed = resume_streaming(tmp_path / "faulty", retry=FAST_RETRY)
        assert resumed.is_complete and not resumed.failures
        assert resumed.status == "complete"
        assert resumed.frame().equals(clean_run.frame())
        assert resumed.aggregate.equals(clean_run.aggregate)
        # And the doctor signs the store off (repairing benign debris like
        # the torn ledger tail the partial append left behind).
        report = doctor_store(tmp_path / "faulty", repair=True)
        assert not report.unresolved
        assert doctor_store(tmp_path / "faulty").healthy

    def test_fired_faults_are_recorded_on_the_plan(self, tmp_path, clean_run):
        plan = FaultPlan([FaultRule(site="unit.execute", kind="raise", nth=1)])
        stream_campaign(
            fault_spec(), tmp_path / "s", shard_size=4,
            policy=ExecutionPolicy(faults=plan), retry=FAST_RETRY,
        )
        assert ("unit.execute", "raise", 1) in plan.fired

    def test_injected_unit_failure_without_retry_is_captured(self, tmp_path):
        # Legacy single-attempt behaviour: the fault lands as a per-unit
        # error tuple, the run itself survives.
        plan = FaultPlan([FaultRule(site="unit.execute", kind="raise", nth=1)])
        result = stream_campaign(
            fault_spec(), tmp_path / "s", shard_size=4,
            policy=ExecutionPolicy(faults=plan),
        )
        assert len(result.failures) == 1
        assert "InjectedFault" in result.failures[0][1]
        assert result.status == "partial" and not result.is_complete


# --------------------------------------------------------------------------- #
# Poison units: retry exhaustion -> quarantine -> degraded completion
# --------------------------------------------------------------------------- #
class TestQuarantine:
    def test_poison_unit_quarantined_and_run_degrades(self, tmp_path, clean_run):
        spec = fault_spec()
        poison_key = spec.expand()[2].key
        plan = FaultPlan(
            [FaultRule(site="unit.execute", kind="raise", where=poison_key)]
        )
        result = stream_campaign(
            spec, tmp_path / "s", shard_size=4,
            policy=ExecutionPolicy(faults=plan), retry=FAST_RETRY,
        )
        assert result.status == "degraded" and result.is_complete is False
        assert len(result.quarantined) == 1
        assert "InjectedFault" in result.quarantined[0][1]
        assert "degraded" in result.describe() and "quarantined" in result.describe()

        store = CampaignStore(tmp_path / "s")
        assert store.quarantine_keys() == {poison_key}
        entries = store.quarantine_entries()
        assert entries[-1]["attempts"] == FAST_RETRY.max_attempts
        status = store.status()
        assert status.quarantined == 1 and status.is_degraded
        assert "quarantined" in status.describe()

        # Quarantine persists across a clean resume: the poison unit stays
        # excluded, nothing re-executes, the campaign stays degraded.
        resumed = resume_streaming(tmp_path / "s", retry=FAST_RETRY)
        assert resumed.status == "degraded" and resumed.simulated == 0
        assert len(resumed.quarantined) == 1

        # Deleting quarantine.jsonl un-poisons the unit: the reload path
        # notices the row count no longer adds up and re-executes exactly
        # the missing unit — converging to the clean run's bytes.
        store.quarantine_path.unlink()
        healed = resume_streaming(tmp_path / "s", retry=FAST_RETRY)
        assert healed.status == "complete" and healed.simulated == 1
        assert healed.frame().equals(clean_run.frame())
        assert healed.aggregate.equals(clean_run.aggregate)

    def test_quarantine_skipped_units_never_redispatch(self, tmp_path):
        spec = fault_spec()
        poison_key = spec.expand()[0].key
        plan = FaultPlan(
            [FaultRule(site="unit.execute", kind="raise", where=poison_key)]
        )
        stream_campaign(
            spec, tmp_path / "s", shard_size=4,
            policy=ExecutionPolicy(faults=plan), retry=FAST_RETRY,
        )
        # With no plan installed, a resume must not even attempt the unit:
        # attempting it would *succeed* and un-degrade the run silently.
        resumed = resume_streaming(tmp_path / "s", retry=FAST_RETRY)
        assert resumed.simulated == 0 and resumed.status == "degraded"

    def test_shard_retry_budget_bounds_redispatch(self, tmp_path):
        # Budget 0 disables retry rounds wholesale: one attempt per unit.
        tight = RetryPolicy(
            max_attempts=3, backoff_base=0.001, shard_retry_budget=0
        )
        plan = FaultPlan(
            [FaultRule(site="unit.execute", kind="raise", nth=1, times=1)]
        )
        result = stream_campaign(
            fault_spec(), tmp_path / "s", shard_size=4,
            policy=ExecutionPolicy(faults=plan), retry=tight,
        )
        assert len(result.failures) == 1  # never retried, and not quarantined
        assert not result.quarantined


# --------------------------------------------------------------------------- #
# Crash chaos: SIGKILL mid-flush, graceful SIGTERM (subprocess workers)
# --------------------------------------------------------------------------- #
_REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _worker_env(faults: dict | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [_REPO_SRC, env.get("PYTHONPATH", "")] if p
    )
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps(faults)
    return env

_WORKER_SNIPPET = """
import sys
from repro.campaign import run_worker
sys.exit(0 if run_worker(sys.argv[1], sys.argv[2], handle_sigterm=True) >= 0 else 1)
"""


class TestCrashChaos:
    def test_sigkill_mid_flush_loses_nothing_durable(self, tmp_path, clean_run):
        spec = fault_spec()
        store_dir = tmp_path / "s"
        # Lay out the store without executing anything (0-shard cap).
        stream_campaign(spec, store_dir, shard_size=4, max_shards=0)
        proc = subprocess.run(
            [sys.executable, "-c", _WORKER_SNIPPET, str(store_dir), "victim"],
            env=_worker_env({"rules": [{"site": "shard.flush", "kind": "kill", "nth": 2}]}),
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        # The kill landed between unit execution and the artifact write, so
        # the second shard's rows survive only in the unit cache — exactly
        # what the resume path replays. Bit identity must still hold.
        resumed = resume_streaming(store_dir, retry=FAST_RETRY)
        assert resumed.is_complete and not resumed.failures
        assert resumed.frame().equals(clean_run.frame())
        report = doctor_store(store_dir, repair=True)
        assert not report.unresolved

    def test_sigterm_stops_worker_gracefully(self, tmp_path):
        spec = fault_spec(name="sigterm-test", seeds=(1, 2, 3, 4))  # 8 units
        store_dir = tmp_path / "s"
        stream_campaign(spec, store_dir, shard_size=1, max_shards=0)
        # Slow every unit down so the TERM lands while shards remain.
        faults = {
            "rules": [
                {
                    "site": "unit.execute",
                    "kind": "delay",
                    "probability": 1.0,
                    "delay_s": 0.1,
                }
            ]
        }
        proc = subprocess.Popen(
            [sys.executable, "-c", _WORKER_SNIPPET, str(store_dir), "polite"],
            env=_worker_env(faults),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        store = CampaignStore(store_dir)
        deadline = time.time() + 60
        try:
            while time.time() < deadline:
                names = [e.get("event") for e in store.event_entries()]
                if "worker_shard" in names:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("worker never flushed a shard")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0  # graceful exit, not a signal death
        names = [e.get("event") for e in store.event_entries()]
        assert "worker_sigterm" in names and "worker_done" in names
        # The in-flight shard completed; the rest are simply pending.
        assert store.shard_progress().complete < 8
        resumed = resume_streaming(store_dir)
        assert resumed.is_complete
        assert doctor_store(store_dir, repair=True).unresolved == []


# --------------------------------------------------------------------------- #
# Worker-path quarantine (lease loop + heartbeat + retry wired together)
# --------------------------------------------------------------------------- #
class TestWorkerFaults:
    def test_worker_retry_and_heartbeat_path(self, tmp_path, clean_run):
        spec = fault_spec()
        store_dir = tmp_path / "s"
        stream_campaign(spec, store_dir, shard_size=4, max_shards=0)
        plan = FaultPlan([FaultRule(site="unit.execute", kind="raise", nth=2)])
        install_fault_plan(plan)
        try:
            flushed = run_worker(store_dir, "w0", retry=FAST_RETRY, lease_ttl=5.0)
        finally:
            clear_fault_plan()
        assert flushed == 2  # both shards, injected failure retried inline
        result = resume_streaming(store_dir)
        assert result.is_complete and result.frame().equals(clean_run.frame())
        events = CampaignStore(store_dir).event_entries()
        shard_events = [e for e in events if e.get("event") == "worker_shard"]
        assert all(e.get("quarantined") == 0 for e in shard_events)


# --------------------------------------------------------------------------- #
# Service hardening: read deadlines, per-connection fault blast radius,
# client connect retry, graceful drain
# --------------------------------------------------------------------------- #
@pytest.fixture()
def hardened_service(tmp_path):
    from repro.service import CampaignService

    service = CampaignService(tmp_path / "svc", shard_size=4, read_timeout=0.4)
    service.start()
    yield service
    service.stop()


class TestServiceHardening:
    def test_silent_connection_dropped_at_read_deadline(self, hardened_service):
        host, port = hardened_service.address
        with socket.create_connection((host, port), timeout=10.0) as conn:
            conn.settimeout(10.0)
            start = time.perf_counter()
            assert conn.recv(1) == b""  # server closed on us, no response
            elapsed = time.perf_counter() - start
        assert 0.2 <= elapsed < 8.0  # the 0.4s deadline, not the 10s client one

    def test_injected_read_fault_costs_one_connection_only(self, hardened_service):
        from repro.service import ServiceClient

        host, port = hardened_service.address
        client = ServiceClient(host, port, timeout=10.0)
        install_fault_plan(
            FaultPlan([FaultRule(site="service.read", kind="raise", times=1)])
        )
        try:
            with pytest.raises(CampaignError, match="injected fault at service.read"):
                client.ping()
        finally:
            clear_fault_plan()
        assert client.ping()  # the accept loop survived the blast

    def test_client_retries_refused_connects(self, hardened_service, monkeypatch):
        from repro.service import ServiceClient

        host, port = hardened_service.address
        real = socket.create_connection
        calls = {"n": 0}

        def flaky(address, timeout=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("connection refused")
            return real(address, timeout=timeout)

        monkeypatch.setattr(socket, "create_connection", flaky)
        client = ServiceClient(
            host, port, timeout=10.0, connect_retries=3, connect_backoff=0.001
        )
        assert client.ping()
        assert calls["n"] == 3

    def test_client_connect_retries_exhaust_to_campaign_error(self):
        from repro.service import ServiceClient

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        client = ServiceClient(
            "127.0.0.1", dead_port, connect_retries=2, connect_backoff=0.001
        )
        with pytest.raises(CampaignError, match="after 3 attempt"):
            client.ping()

    def test_graceful_drain_gives_unfinished_jobs_a_terminal_answer(
        self, hardened_service
    ):
        # The drain contract under the fair-share scheduler: finished work
        # stays finished, a job still mid-run flips to ``cancelled`` with
        # its partial store intact (never left hanging in a live state).
        from repro.service import ServiceClient

        host, port = hardened_service.address
        client = ServiceClient(host, port, timeout=30.0)
        finished = client.submit(fault_spec(name="drain-finished").to_dict())
        client.wait(finished["job"])
        big = client.submit(
            fault_spec(name="drain-big", seeds=range(500)).to_dict()
        )
        big_job = hardened_service.get_job(big["job"])
        store = CampaignStore(big_job.store_dir)
        deadline = time.time() + 60
        while time.time() < deadline:
            if big_job.state == "running" and store.shard_entries():
                break
            time.sleep(0.02)
        else:
            pytest.fail("big job never started landing shards")
        client.shutdown()
        deadline = time.time() + 60
        while time.time() < deadline:
            if big_job.done:
                break
            time.sleep(0.02)
        done = hardened_service.get_job(finished["job"])
        interrupted = hardened_service.get_job(big["job"])
        assert done.state == "complete"  # finished work survives the drain
        assert interrupted.state == "cancelled"  # terminal, not hanging
        assert "resume" in interrupted.error
        assert store.shard_entries()  # partial store kept for resumption

    def test_serve_forever_drains_on_sigterm(self, tmp_path):
        snippet = (
            "import sys\n"
            "from repro.service.server import serve_forever\n"
            "sys.exit(serve_forever(sys.argv[1]))\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", snippet, str(tmp_path / "root")],
            env=_worker_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                if (tmp_path / "root" / "service.json").exists():
                    break
                time.sleep(0.02)
            else:
                pytest.fail("service never published its address")
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "draining and shutting down" in stdout
