"""Tests for the statistics substrate (descriptive, regression, correlation,
binning, distributions)."""

import math

import numpy as np
import pytest

from repro.errors import StatsError
from repro.frame import Frame
from repro.stats import (
    box_stats,
    compare_eras,
    correlation_matrix,
    empirical_cdf,
    extrapolate_linear,
    geometric_mean,
    histogram,
    linear_fit,
    pearson,
    quantiles,
    spearman,
    summarize,
    theil_sen_fit,
    trimmed_mean,
    weighted_mean,
    year_bins,
    bin_by_year,
)


class TestDescriptive:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_summarize_ignores_missing(self):
        assert summarize([1.0, None, float("nan"), 3.0]).count == 2

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_iqr_and_cv(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.iqr == pytest.approx(2.0)
        assert summary.coefficient_of_variation > 0

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_weighted_mean_length_mismatch(self):
        with pytest.raises(StatsError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(StatsError):
            geometric_mean([1.0, 0.0])

    def test_trimmed_mean_removes_outliers(self):
        values = [1.0] * 9 + [1000.0]
        assert trimmed_mean(values, 0.1) == pytest.approx(1.0)

    def test_trimmed_mean_invalid_proportion(self):
        with pytest.raises(StatsError):
            trimmed_mean([1.0], 0.6)


class TestRegression:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2], [1, 3, 5])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_scalar_and_array(self):
        fit = linear_fit([0, 10], [0, 10])
        assert fit.predict(5) == pytest.approx(5.0)
        assert np.allclose(fit.predict(np.array([1.0, 2.0])), [1.0, 2.0])

    def test_missing_pairs_dropped(self):
        fit = linear_fit([0, 1, None, 2], [1, 3, 10, 5])
        assert fit.n == 3

    def test_too_few_points_rejected(self):
        with pytest.raises(StatsError):
            linear_fit([1], [1])

    def test_constant_x_rejected(self):
        with pytest.raises(StatsError):
            linear_fit([2, 2], [1, 3])

    def test_extrapolate_linear_idle_formula(self):
        # Two-point extrapolation to zero load: 2*P10 - P20.
        assert extrapolate_linear([10, 20], [50, 70], at=0) == pytest.approx(30.0)

    def test_theil_sen_robust_to_outlier(self):
        x = list(range(10))
        y = [2 * v for v in x]
        y[5] = 500.0
        robust = theil_sen_fit(x, y)
        assert robust.slope == pytest.approx(2.0, rel=0.1)

    def test_theil_sen_constant_x_rejected(self):
        with pytest.raises(StatsError):
            theil_sen_fit([1, 1], [1, 2])


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_zero_variance_is_nan(self):
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))

    def test_spearman_monotonic_nonlinear(self):
        x = [1, 2, 3, 4, 5]
        y = [v**3 for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        assert -1.0 <= spearman([1, 2, 2, 3], [4, 4, 5, 6]) <= 1.0

    def test_correlation_matrix(self):
        frame = Frame.from_dict({"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0], "c": [3.0, 1.0, 2.0]})
        result = correlation_matrix(frame, ["a", "b", "c"])
        assert result.value("a", "b") == pytest.approx(1.0)
        assert result.value("a", "a") == pytest.approx(1.0)
        assert result.to_frame().shape == (3, 4)

    def test_correlation_matrix_strongest_pairs(self):
        frame = Frame.from_dict({"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0], "c": [3.0, 1.0, 2.0]})
        pairs = correlation_matrix(frame, ["a", "b", "c"]).strongest_pairs(1)
        assert pairs[0][:2] == ("a", "b")

    def test_correlation_matrix_non_numeric_rejected(self):
        frame = Frame.from_dict({"a": [1.0], "s": ["x"]})
        with pytest.raises(StatsError):
            correlation_matrix(frame, ["a", "s"])

    def test_correlation_matrix_unknown_method(self):
        frame = Frame.from_dict({"a": [1.0], "b": [2.0]})
        with pytest.raises(StatsError):
            correlation_matrix(frame, ["a", "b"], method="kendall")


class TestBinning:
    @pytest.fixture()
    def year_frame(self):
        return Frame.from_dict(
            {
                "hw_avail_year": [2008, 2008, 2009, 2022, 2023, 2023],
                "vendor": ["Intel", "AMD", "Intel", "AMD", "AMD", "Intel"],
                "power": [100.0, 110.0, 120.0, 280.0, 300.0, 320.0],
            }
        )

    def test_year_bins(self, year_frame):
        assert year_bins(year_frame) == [2008, 2009, 2022, 2023]

    def test_bin_by_year(self, year_frame):
        binned = bin_by_year(year_frame, "power")
        assert len(binned) == 4
        first = binned.row(0)
        assert first["hw_avail_year"] == 2008
        assert first["mean"] == pytest.approx(105.0)
        assert first["count"] == 2

    def test_bin_by_year_with_group(self, year_frame):
        binned = bin_by_year(year_frame, "power", group_columns=["vendor"])
        assert len(binned) == 6

    def test_bin_by_year_missing_column(self, year_frame):
        with pytest.raises(StatsError):
            bin_by_year(year_frame, "bogus")

    def test_compare_eras_ratio(self, year_frame):
        comparison = compare_eras(year_frame, "power", early=(None, 2010), late=(2022, None))
        assert comparison.early.mean == pytest.approx(110.0)
        assert comparison.late.mean == pytest.approx(300.0)
        assert comparison.ratio == pytest.approx(300.0 / 110.0)

    def test_compare_eras_labels(self, year_frame):
        comparison = compare_eras(year_frame, "power", early=(None, 2010), late=(2022, None))
        assert "2010" in comparison.describe()
        assert "2022" in comparison.describe()


class TestDistribution:
    def test_box_stats_quartiles(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.q25 == 2.0 and stats.q75 == 4.0
        assert stats.outliers == ()

    def test_box_stats_detects_outliers(self):
        stats = box_stats([1.0, 1.1, 0.9, 1.05, 1.0, 10.0])
        assert 10.0 in stats.outliers
        assert stats.whisker_high < 10.0

    def test_box_stats_empty(self):
        stats = box_stats([])
        assert stats.count == 0
        assert math.isnan(stats.median)

    def test_histogram_counts(self):
        hist = histogram([0.5, 1.5, 1.6, 2.5], bins=3, value_range=(0, 3))
        assert hist.total == 4
        assert hist.counts == (1, 2, 1)

    def test_histogram_densities_integrate_to_one(self):
        hist = histogram(list(np.linspace(0, 1, 50)), bins=5)
        widths = np.diff(hist.edges)
        assert sum(d * w for d, w in zip(hist.densities(), widths)) == pytest.approx(1.0)

    def test_histogram_invalid_bins(self):
        with pytest.raises(StatsError):
            histogram([1.0], bins=0)

    def test_empirical_cdf(self):
        values, probabilities = empirical_cdf([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probabilities[-1] == pytest.approx(1.0)

    def test_quantiles(self):
        q = quantiles([1.0, 2.0, 3.0, 4.0], [0.0, 0.5, 1.0])
        assert q == [1.0, 2.5, 4.0]

    def test_quantiles_empty(self):
        assert all(math.isnan(v) for v in quantiles([], [0.5]))
