"""Fair-share scheduler: fairness, identity under chaos, cancellation, TTL,
event backpressure, and the supporting follower/lease machinery."""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.campaign import CampaignSpec, LeaseLedger, stream_campaign
from repro.campaign.store import CampaignStore
from repro.errors import CampaignError
from repro.io.jsonl import JsonlFollower, read_jsonl
from repro.service import CampaignService, EventStream, ServiceClient
from repro.service.protocol import recv_message, send_message

FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def wide_payload(name: str, n_seeds: int, seed_start: int = 0) -> dict:
    """A spec whose unit count scales with ``n_seeds`` (one cpu model).

    Unit identity excludes the campaign name, so tests that must do *real*
    work (not hit the service-wide results cache warmed by earlier tests)
    pick a disjoint ``seed_start`` range.
    """
    return CampaignSpec(
        name=name,
        sweep={
            "cpu_model": ["EPYC 9654"],
            "seed": list(range(seed_start, seed_start + n_seeds)),
        },
        base=FAST_BASE,
    ).to_dict()


def wait_for(predicate, timeout: float = 30.0, interval: float = 0.05):
    """Poll ``predicate`` until truthy; returns its value or fails the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"condition not reached within {timeout}s")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    service = CampaignService(
        tmp_path_factory.mktemp("sched-root"), shard_size=2, pool=2
    )
    service.start()
    yield service
    service.stop()


@pytest.fixture(scope="module")
def client(service) -> ServiceClient:
    host, port = service.address
    return ServiceClient(host, port, timeout=180.0)


def ledger_records(service, record: str | None = None) -> list[dict]:
    records = read_jsonl(service.root / "scheduler.jsonl")
    if record is None:
        return records
    return [entry for entry in records if entry.get("record") == record]


# --------------------------------------------------------------------------- #
# Fairness and identity (the tentpole's acceptance criteria)
# --------------------------------------------------------------------------- #
class TestFairness:
    def test_small_job_completes_while_sweep_still_runs(
        self, service, client, tmp_path
    ):
        # The headline behaviour: a 16-unit job submitted while a large
        # sweep is mid-flight must complete promptly, not queue behind it.
        big = client.submit(wide_payload("fair-big", 400), shard_size=4)
        wait_for(lambda: client.status(big["job"])["state"] == "running")
        small = client.submit(wide_payload("fair-small", 16))
        result = client.wait(small["job"])
        assert result["state"] == "complete" and result["completed"] == 16
        big_state = client.status(big["job"])["state"]
        assert big_state in {"queued", "running", "finalizing"}
        # The sweep still finishes, and its interleaved aggregate is
        # bit-identical to a clean serial run of the same spec.
        big_result = client.wait(big["job"])
        assert big_result["completed"] == 400
        serial = stream_campaign(
            CampaignSpec.from_dict(wide_payload("fair-big", 400)),
            tmp_path / "serial",
            shard_size=4,
        )
        assert big_result["aggregate"] == serial.aggregate.to_dict()
        # The ledger agrees with the wall clock: small's completion record
        # lands before big's.
        completions = [r["job"] for r in ledger_records(service, "job_complete")]
        assert completions.index(small["job"]) < completions.index(big["job"])

    def test_high_priority_outschedules_low_at_equal_size(self, service, client):
        # Disjoint seed ranges: both jobs simulate fresh units, so the
        # finishing order is decided by dispatch share, not cache luck.
        low = client.submit(
            wide_payload("prio-low", 160, seed_start=10_000), priority="low"
        )
        high = client.submit(
            wide_payload("prio-high", 160, seed_start=20_000), priority="high"
        )
        client.wait(low["job"])
        client.wait(high["job"])
        populated = [r["job"] for r in ledger_records(service, "job_populated")]
        assert populated.index(high["job"]) < populated.index(low["job"])
        # Dispatch share before high finished populating reflects the 4:1
        # deficit weights (loosely: high strictly ahead, not a photo finish).
        records = ledger_records(service)
        cutoff = next(
            i
            for i, r in enumerate(records)
            if r.get("record") == "job_populated" and r["job"] == high["job"]
        )
        window = [
            r
            for r in records[:cutoff]
            if r.get("record") == "dispatch"
            and r["job"] in (low["job"], high["job"])
        ]
        high_n = sum(1 for r in window if r["job"] == high["job"])
        low_n = sum(1 for r in window if r["job"] == low["job"])
        assert high_n > low_n

    def test_per_job_cap_bounds_in_flight_shards(self, service, client):
        job = client.submit(wide_payload("capped", 40), workers=1)
        client.wait(job["job"])
        in_flight, peak = set(), 0
        for record in ledger_records(service):
            if record.get("job") != job["job"]:
                continue
            if record.get("record") == "dispatch":
                in_flight.add(record["index"])
                peak = max(peak, len(in_flight))
            elif record.get("record") == "result":
                in_flight.discard(record["index"])
        assert peak == 1

    def test_summary_reports_pool_work_not_finalize_reloads(
        self, service, client
    ):
        payload = wide_payload("acct", 12, seed_start=70_000)
        first = client.wait(client.submit(payload)["job"])
        assert first["simulated"] == 12 and first["cache_hits"] == 0
        # Same units, different shard layout => a distinct job whose every
        # unit comes out of the shared results cache.  If the summary took
        # its counters from the finalize pass (which only ever reloads),
        # both jobs would misreport identically.
        shared = client.wait(client.submit(payload, shard_size=3)["job"])
        assert shared["simulated"] == 0 and shared["cache_hits"] == 12


class TestWorkerLoss:
    def test_sigkill_mid_job_recovers_with_identical_aggregate(
        self, service, client, tmp_path
    ):
        payload = wide_payload("chaos-kill", 240, seed_start=30_000)
        job = client.submit(payload)
        wait_for(
            lambda: client.status(job["job"])
            .get("shards", {})
            .get("rows_flushed", 0)
            > 0
        )
        victim = client.stats()["pool"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        result = client.wait(job["job"])
        assert result["state"] == "complete" and result["completed"] == 240
        serial = stream_campaign(
            CampaignSpec.from_dict(payload), tmp_path / "serial", shard_size=2
        )
        assert result["aggregate"] == serial.aggregate.to_dict()
        # The loss and the replacement both hit the ledger.
        wait_for(lambda: ledger_records(service, "worker_exit"))
        assert ledger_records(service, "respawn")
        # The pool healed: back to full strength, all alive.
        pool = wait_for(
            lambda: (
                lambda p: p if len(p) == service.pool_size else None
            )([w for w in client.stats()["pool"] if w["alive"]])
        )
        assert victim not in {w["pid"] for w in pool}


# --------------------------------------------------------------------------- #
# Cancellation, dedup races, TTL
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_cancel_running_job_releases_leases_and_resumes_on_resubmit(
        self, service, client
    ):
        payload = wide_payload("cancel-run", 200, seed_start=40_000)
        job = client.submit(payload)
        wait_for(
            lambda: client.status(job["job"])
            .get("shards", {})
            .get("rows_flushed", 0)
            > 0
        )
        response = client.cancel(job["job"])
        assert response["state"] in {"cancelling", "cancelled"}
        wait_for(lambda: client.status(job["job"])["state"] == "cancelled")
        with pytest.raises(CampaignError, match="cancel"):
            client.result(job["job"])
        # The cancel journals its lease sweep into the job's event stream.
        store = CampaignStore(service.jobs_root / job["job"])
        cancelled = [
            e for e in read_jsonl(store.events_path) if e["event"] == "job_cancelled"
        ]
        assert cancelled and "leases_released" in cancelled[-1]
        assert LeaseLedger(store, "probe").outstanding() == []
        # Resubmit revives the same job id; completed shards reload, the
        # rest execute, and the job runs to completion.
        revived = client.submit(payload)
        assert revived["job"] == job["job"] and not revived["deduped"]
        result = client.wait(job["job"])
        assert result["state"] == "complete" and result["completed"] == 200
        # Work accounting survives the revival: shards landed before the
        # cancel reload (neither simulated nor cache hits), and every unit
        # is accounted for exactly once.
        assert result["reloaded"] > 0
        assert (
            result["simulated"] + result["cache_hits"] + result["reloaded"]
            == 200
        )

    def test_submit_racing_cancellation_is_honoured_after_drain(
        self, service, client
    ):
        payload = wide_payload("cancel-race", 200, seed_start=50_000)
        job = client.submit(payload)
        wait_for(lambda: client.status(job["job"])["state"] == "running")
        client.cancel(job["job"])
        # No waiting for the cancel to land: the resubmit races it.
        revived = client.submit(payload)
        assert revived["job"] == job["job"] and not revived["deduped"]
        result = client.wait(job["job"])
        assert result["state"] == "complete" and result["completed"] == 200

    def test_cancel_terminal_job_is_idempotent(self, client):
        job = client.submit(wide_payload("cancel-done", 8))
        client.wait(job["job"])
        response = client.cancel(job["job"])
        assert response["ok"] and response["state"] == "complete"

    def test_cancel_queued_job_never_runs(self, service, client):
        # Saturate the pool so a follow-up job sits queued long enough to
        # cancel before admission dispatches anything for it.
        blocker = client.submit(
            wide_payload("cancel-blocker", 300, seed_start=60_000)
        )
        wait_for(lambda: client.status(blocker["job"])["state"] == "running")
        doomed = client.submit(
            wide_payload("cancel-queued", 100), priority="low"
        )
        client.cancel(doomed["job"])
        wait_for(lambda: client.status(doomed["job"])["state"] == "cancelled")
        client.wait(blocker["job"])


class TestTTL:
    def test_ttl_evicts_store_and_resubmit_recomputes(self, service, client):
        payload = wide_payload("ttl-job", 8)
        job = client.submit(payload, ttl=0.3)
        client.wait(job["job"])
        store_dir = service.jobs_root / job["job"]
        assert store_dir.exists()
        wait_for(lambda: client.status(job["job"]).get("evicted"))
        assert not store_dir.exists()
        with pytest.raises(CampaignError, match="evicted"):
            client.result(job["job"])
        assert any(
            r["job"] == job["job"]
            for r in ledger_records(service, "job_evicted")
        )
        # Resubmission revives the job id and recomputes the store.
        revived = client.submit(payload)  # no ttl: the recompute persists
        assert revived["job"] == job["job"] and not revived["deduped"]
        result = client.wait(job["job"])
        assert result["state"] == "complete" and store_dir.exists()


# --------------------------------------------------------------------------- #
# Event streaming: server-side drop accounting, client-side EventStream
# --------------------------------------------------------------------------- #
class TestEventBackpressure:
    def test_lagging_consumer_gets_newest_events_plus_drop_count(
        self, service, client
    ):
        # ~60 shards => well over 8 events; a buffer of 8 must surface a
        # drop notice on the wire and an events_dropped event in the store.
        job = client.submit(wide_payload("backlog", 120))
        client.wait(job["job"])
        with socket.create_connection(service.address, timeout=30.0) as conn:
            stream = conn.makefile("rwb")
            send_message(
                stream,
                {"op": "events", "job": job["job"], "buffer": 8},
            )
            lines = []
            while True:
                response = recv_message(stream)
                assert response is not None and response["ok"]
                lines.append(response)
                if response.get("done"):
                    break
        closing = lines[-1]
        notices = [r for r in lines if "dropped" in r and "done" not in r]
        events = [r["event"] for r in lines if "event" in r]
        assert notices and notices[0]["dropped"] > 0
        assert closing["events_dropped"] >= notices[0]["dropped"]
        # Per poll at most `buffer` events; the tail poll adds the
        # just-recorded events_dropped marker.
        assert len(events) <= 8 * 2
        store = CampaignStore(service.jobs_root / job["job"])
        assert any(
            e["event"] == "events_dropped" for e in read_jsonl(store.events_path)
        )

    def test_client_events_skips_drop_notices(self, service, client):
        job = client.submit(wide_payload("backlog", 120))  # deduped: complete
        names = [
            e["event"] for e in client.events(job["job"], buffer=8)
        ]
        assert names  # only real events come through the iterator
        assert all(isinstance(name, str) for name in names)


class TestEventStream:
    def test_orders_and_exhausts(self):
        events = [{"n": i} for i in range(5)]
        stream = EventStream(iter(events), buffer=16)
        assert list(stream) == events
        assert stream.get(timeout=0.01) is None
        assert stream.drops == 0

    def test_drop_oldest_when_buffer_full(self):
        events = [{"n": i} for i in range(6)]
        stream = EventStream(iter(events), buffer=2)
        stream._thread.join(timeout=5.0)  # let the feeder outrun the reader
        assert not stream._thread.is_alive()
        assert stream.drops == 4
        assert list(stream) == [{"n": 4}, {"n": 5}]

    def test_source_error_surfaces_after_drain(self):
        def source():
            yield {"n": 0}
            raise ValueError("connection torn")

        stream = EventStream(source(), buffer=4)
        stream._thread.join(timeout=5.0)
        assert stream.get() == {"n": 0}
        with pytest.raises(ValueError, match="torn"):
            stream.get()

    def test_close_unblocks_reader_and_abandons_source(self):
        gate = threading.Event()

        def source():
            yield {"n": 0}
            gate.wait(timeout=30.0)
            yield {"n": 1}

        stream = EventStream(source(), buffer=4)
        assert stream.get(timeout=5.0) == {"n": 0}
        assert stream.get(timeout=0.05) is None  # open but idle: times out
        stream.close()
        assert stream.get(timeout=1.0) is None
        gate.set()

    def test_context_manager_and_bad_buffer(self):
        with EventStream(iter([{"n": 0}]), buffer=1) as stream:
            assert stream.get(timeout=5.0) == {"n": 0}
        with pytest.raises(CampaignError, match="buffer"):
            EventStream(iter([]), buffer=0)

    def test_stream_helper_follows_live_job(self, client):
        job = client.submit(wide_payload("live-stream", 24))
        with client.stream(job["job"]) as stream:
            names = [event["event"] for event in stream]
        assert names and names[-1] == "campaign_complete"


# --------------------------------------------------------------------------- #
# Shutdown semantics
# --------------------------------------------------------------------------- #
class TestStopSemantics:
    def test_wedged_drain_is_loud(self, tmp_path):
        service = CampaignService(tmp_path / "svc", pool=2, drain_timeout=1.0)
        service.start()
        try:
            original = service._scheduler.stop
            service._scheduler.stop = lambda timeout=None: False
            with pytest.raises(CampaignError, match="drain did not complete"):
                service.stop()
        finally:
            service._scheduler.stop = original
            assert service._scheduler.stop(timeout=30.0)

    def test_stop_mid_run_cancels_with_resumable_store(self, tmp_path):
        service = CampaignService(tmp_path / "svc", shard_size=2, pool=2)
        host, port = service.start()
        client = ServiceClient(host, port, timeout=60.0)
        job = client.submit(wide_payload("drain-me", 300))
        wait_for(
            lambda: client.status(job["job"])
            .get("shards", {})
            .get("rows_flushed", 0)
            > 0
        )
        service.stop()
        handle = service.get_job(job["job"])
        assert handle.state == "cancelled"
        assert "resume" in (handle.error or "")
        # The partial store is intact and resumable by the plain engine.
        store = CampaignStore(service.jobs_root / job["job"])
        assert store.shard_entries()  # in-flight shards drained to disk


# --------------------------------------------------------------------------- #
# Supporting machinery: incremental follower, lease sweep
# --------------------------------------------------------------------------- #
class TestJsonlFollower:
    def test_incremental_polls_return_only_new_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        follower = JsonlFollower(path)
        assert follower.poll() == []  # missing file: nothing, no error
        path.write_bytes(b'{"n": 1}\n{"n": 2}\n')
        assert follower.poll() == [{"n": 1}, {"n": 2}]
        assert follower.poll() == []
        with open(path, "ab") as fh:
            fh.write(b'{"n": 3}\n')
        assert follower.poll() == [{"n": 3}]

    def test_torn_tail_is_deferred_until_completed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"n": 1}\n{"n": 2')  # torn mid-write
        follower = JsonlFollower(path)
        assert follower.poll() == [{"n": 1}]
        with open(path, "ab") as fh:
            fh.write(b'2}\n')
        assert follower.poll() == [{"n": 22}]

    def test_corrupt_complete_line_is_counted_and_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"n": 1}\n{garbage\n{"n": 2}\n')
        follower = JsonlFollower(path)
        assert follower.poll() == [{"n": 1}, {"n": 2}]
        assert follower.corrupt == 1


class TestLeaseSweep:
    @pytest.fixture
    def store(self, tmp_path) -> CampaignStore:
        store = CampaignStore(tmp_path / "store")
        store.initialize_streaming(
            CampaignSpec.from_dict(wide_payload("lease-sweep", 8)), shard_size=2
        )
        return store

    def test_outstanding_lists_live_unfinished_claims(self, store):
        ledger = LeaseLedger(store, "w0")
        assert ledger.outstanding() == []
        ledger.try_claim(0)
        ledger.try_claim(2)
        assert [lease.index for lease in ledger.outstanding()] == [0, 2]

    def test_release_outstanding_sweeps_only_unfinished(self, tmp_path):
        payload = wide_payload("lease-done", 8)
        store_dir = tmp_path / "complete"
        stream_campaign(CampaignSpec.from_dict(payload), store_dir, shard_size=2)
        store = CampaignStore(store_dir)
        ledger = LeaseLedger(store, "w0")
        ledger.try_claim(0)  # claim on an already-recorded shard
        assert ledger.outstanding() == []  # completed shards are never swept
        assert ledger.release_outstanding() == []

    def test_release_outstanding_returns_swept_indices(self, store):
        ledger = LeaseLedger(store, "w0")
        ledger.try_claim(1)
        ledger.try_claim(3)
        assert ledger.release_outstanding() == [1, 3]
        assert ledger.outstanding() == []


# --------------------------------------------------------------------------- #
# Scheduler resilience
# --------------------------------------------------------------------------- #
class TestSchedulerResilience:
    def test_expansion_failure_fails_job_not_service(self, service, client):
        # A spec that validates at submit but cannot resolve units (no
        # cpu_model axis) must fail cleanly — and the service stays up.
        payload = {
            "name": "bad-expand",
            "sweep": {"seed": [1, 2]},
            "base": dict(FAST_BASE),
        }
        job = client.submit(payload)
        wait_for(lambda: client.status(job["job"])["state"] == "failed")
        assert "cpu_model" in client.status(job["job"])["error"]
        assert client.ping()  # the scheduler loop survived
        follow_up = client.wait(client.submit(wide_payload("good-after", 8))["job"])
        assert follow_up["state"] == "complete"

    def test_stats_snapshot_shape(self, client):
        stats = client.stats()
        assert stats["pool_size"] == 2
        assert isinstance(stats["pool"], list) and isinstance(stats["active"], list)
        assert all({"worker", "pid", "alive"} <= set(w) for w in stats["pool"])
        assert isinstance(stats["jobs"], dict)

    def test_scheduler_ledger_is_valid_jsonl(self, service):
        records = ledger_records(service)
        assert records and records[0]["record"] == "scheduler_start"
        assert all("ts" in record for record in records)
        kinds = {record["record"] for record in records}
        assert {"job_queued", "job_admit", "dispatch", "result"} <= kinds
