"""Lease-ledger semantics: claims, races, expiry, crash reclamation."""

from __future__ import annotations

import json
import os
import subprocess
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    Lease,
    LeaseLedger,
    resume_streaming,
    stream_campaign,
)
from repro.campaign.leases import DEFAULT_LEASE_TTL
from repro.errors import CampaignError

FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def small_spec(name="lease-test", seeds=(1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": ["EPYC 9654", "Xeon X5670"], "seed": list(seeds)},
        base=FAST_BASE,
    )


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    store = CampaignStore(tmp_path / "store")
    store.initialize_streaming(small_spec(), shard_size=2)
    return store


class TestLease:
    def test_expiry_uses_wall_clock(self):
        now = time.time()
        lease = Lease(index=0, worker="w0", pid=os.getpid(), ts=now, deadline=now + 60)
        assert not lease.expired()
        assert lease.expired(now=now + 61)

    def test_holder_alive_for_own_pid(self):
        now = time.time()
        lease = Lease(index=0, worker="w0", pid=os.getpid(), ts=now, deadline=now + 60)
        assert lease.holder_alive() and lease.valid()

    def test_dead_pid_invalidates_despite_fresh_deadline(self):
        # A SIGKILL'd worker must not pin its shard for the whole TTL: the
        # pid liveness check reclaims it immediately.
        child = subprocess.Popen(["sleep", "0"])
        child.wait()
        now = time.time()
        lease = Lease(
            index=0, worker="dead", pid=child.pid, ts=now, deadline=now + 3600
        )
        assert not lease.expired()
        assert not lease.holder_alive()
        assert not lease.valid()

    def test_malformed_record_is_no_claim(self):
        assert Lease.from_record({"index": "zero", "worker": "w"}) is None
        assert Lease.from_record({}) is None
        roundtrip = Lease.from_record(
            Lease(index=3, worker="w1", pid=9, ts=1.0, deadline=2.0).to_record()
        )
        assert roundtrip == Lease(index=3, worker="w1", pid=9, ts=1.0, deadline=2.0)


class TestLeaseLedger:
    def test_claim_then_foreign_claim_rejected(self, store):
        mine = LeaseLedger(store, "w0")
        other = LeaseLedger(store, "w1")
        lease = mine.try_claim(0)
        assert lease is not None and lease.worker == "w0"
        assert other.try_claim(0) is None  # held by a live worker
        assert other.try_claim(1) is not None  # different shard is free

    def test_double_claim_race_latest_valid_lease_wins(self, store):
        # Simulate the append race directly: both workers get past the
        # pre-check and append claims.  The protocol's tie-break — latest
        # valid lease in append order — must pick exactly one winner.
        a = LeaseLedger(store, "wa")
        b = LeaseLedger(store, "wb")
        now = time.time()
        store.record_lease(
            Lease(0, "wa", a.pid, now, now + DEFAULT_LEASE_TTL).to_record()
        )
        store.record_lease(
            Lease(0, "wb", b.pid, now, now + DEFAULT_LEASE_TTL).to_record()
        )
        winner = a.holder(0)
        assert winner is not None and winner.worker == "wb"  # latest wins
        # try_claim's post-append re-read applies the same rule: the loser
        # observes it lost, the winner observes it won.
        assert a.try_claim(0) is None
        assert b.holder(0).worker == "wb"

    def test_expired_lease_is_reclaimable(self, store):
        holder = LeaseLedger(store, "slow", ttl=0.05)
        assert holder.try_claim(0) is not None
        assert not store.lease_entries() == {}
        time.sleep(0.06)
        taker = LeaseLedger(store, "fresh")
        assert holder.holder(0) is None  # expired, nobody home
        reclaimed = taker.try_claim(0)
        assert reclaimed is not None and reclaimed.worker == "fresh"

    def test_dead_worker_lease_reclaimed_immediately(self, store):
        child = subprocess.Popen(["sleep", "0"])
        child.wait()
        now = time.time()
        store.record_lease(
            Lease(0, "crashed", child.pid, now, now + 3600).to_record()
        )
        survivor = LeaseLedger(store, "survivor")
        assert survivor.reclaimable(0)  # hours left on the TTL, pid dead
        assert survivor.try_claim(0) is not None

    def test_release_hands_back_without_waiting(self, store):
        first = LeaseLedger(store, "w0")
        assert first.try_claim(0) is not None
        first.release(0)
        second = LeaseLedger(store, "w1")
        assert second.try_claim(0) is not None  # no TTL wait needed

    def test_lease_records_invisible_to_shard_results(self, store):
        LeaseLedger(store, "w0").try_claim(0)
        assert store.shard_entries() == {}  # results only
        assert list(store.lease_entries()) == [0]


class TestCrashRecovery:
    def test_flushed_artifact_without_record_reloads_not_reexecutes(self, tmp_path):
        # The kill window between the artifact .npz landing and the shard's
        # complete record appending: recovery must adopt the artifact, not
        # re-simulate the shard.
        spec = small_spec(name="recover")
        store_dir = tmp_path / "store"
        first = stream_campaign(spec, store_dir, shard_size=2)
        assert first.is_complete and first.total_shards == 2

        store = CampaignStore(store_dir)
        # Drop shard 0's result record (keep everything else) — exactly the
        # ledger a worker killed after its artifact flush leaves behind.
        survivors = [
            entry
            for entry in store._jsonl_entries(store.shards_path)
            if entry.get("index") != 0
        ]
        store.shards_path.write_text(
            "".join(json.dumps(entry, sort_keys=True) + "\n" for entry in survivors),
            encoding="utf-8",
        )
        assert 0 not in store.shard_entries()

        resumed = resume_streaming(store_dir)
        assert resumed.is_complete
        assert resumed.simulated == 0  # nothing re-executed
        assert all(shard.reloaded for shard in resumed.shards)
        entry = CampaignStore(store_dir).shard_entries()[0]
        assert entry["status"] == "complete" and entry.get("recovered") is True
        assert resumed.frame().equals(first.frame())
        assert resumed.aggregate.equals(first.aggregate)

    def test_partial_artifact_is_not_adopted(self, tmp_path):
        # A partial shard's artifact (fewer rows than units) must fail the
        # recovery length check and re-execute its missing units.
        spec = small_spec(name="partial-recover")
        store_dir = tmp_path / "store"
        partial = stream_campaign(spec, store_dir, shard_size=4, max_units=3)
        assert not partial.is_complete and partial.shards[0].n_rows == 3

        store = CampaignStore(store_dir)
        store.shards_path.unlink()  # no records at all; artifact remains
        resumed = resume_streaming(store_dir)
        assert resumed.is_complete
        assert resumed.simulated == 1  # only the missing unit
        assert resumed.cache_hits == 3

    def test_worker_on_uninitialised_store_errors(self, tmp_path):
        from repro.campaign import run_worker

        (tmp_path / "store").mkdir()
        with pytest.raises(CampaignError, match="shard layout|not a campaign"):
            run_worker(tmp_path / "store", "w0")


class TestHeartbeat:
    def test_renew_pushes_deadline_forward(self, store):
        from repro.campaign import LeaseLedger as _Ledger

        ledger = _Ledger(store, "hb", ttl=0.5)
        assert ledger.try_claim(0) is not None
        first = ledger.holder(0)
        time.sleep(0.05)
        ledger.renew(0)
        renewed = ledger.holder(0)
        assert renewed.deadline > first.deadline
        assert renewed.worker == "hb" and renewed.pid == os.getpid()

    def test_heartbeat_keeps_slow_worker_claim_past_ttl(self, store):
        from repro.campaign import LeaseHeartbeat, LeaseLedger

        ledger = LeaseLedger(store, "slow", ttl=0.3)
        assert ledger.try_claim(0) is not None
        with LeaseHeartbeat(ledger, 0, interval=0.05):
            time.sleep(0.6)  # two TTLs of "work"
            held = ledger.holder(0)
            assert held is not None and held.worker == "slow"
            rival = LeaseLedger(store, "rival", ttl=0.3)
            assert rival.try_claim(0) is None  # the heartbeat defends it

    def test_hung_worker_reclaimed_while_pid_alive(self, store):
        # The hang model: the pid exists, but no heartbeats arrive.  The
        # deadline lapses and a rival reclaims the shard.
        from repro.campaign import LeaseLedger

        hung = LeaseLedger(store, "hung", ttl=0.15)
        assert hung.try_claim(0) is not None
        time.sleep(0.25)  # no renewals
        rival = LeaseLedger(store, "rival", ttl=60.0)
        assert rival.reclaimable(0)
        taken = rival.try_claim(0)
        assert taken is not None and taken.worker == "rival"

    def test_heartbeat_stop_is_idempotent_and_reentrant(self, store):
        from repro.campaign import LeaseHeartbeat, LeaseLedger

        ledger = LeaseLedger(store, "hb", ttl=1.0)
        ledger.try_claim(0)
        beat = LeaseHeartbeat(ledger, 0, interval=0.02)
        beat.start()
        beat.stop()
        beat.stop()  # second stop is a no-op, not an error
