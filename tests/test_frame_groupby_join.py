"""Tests for group-by aggregation and joins."""

import pytest

from repro.errors import GroupByError, JoinError
from repro.frame import Aggregation, Frame, join


class TestGroupBy:
    def test_group_count_and_order(self, tiny_frame):
        grouped = tiny_frame.groupby("vendor")
        assert grouped.ngroups == 2
        # First-appearance order: Intel appears first in the fixture.
        assert [key for key, _ in grouped.groups()][0] == ("Intel",)

    def test_agg_tuple_spec(self, tiny_frame):
        result = tiny_frame.groupby("vendor").agg({"mean_power": ("power", "mean"),
                                                   "n": ("power", "size")})
        intel = result.filter(result["vendor"] == "Intel").row(0)
        assert intel["mean_power"] == pytest.approx((210 + 190 + 350) / 3)
        assert intel["n"] == 3

    def test_agg_count_ignores_missing(self, tiny_frame):
        result = tiny_frame.groupby("vendor").agg({"n": ("power", "count")})
        amd = result.filter(result["vendor"] == "AMD").row(0)
        assert amd["n"] == 2

    def test_agg_bare_string_uses_same_column(self, tiny_frame):
        result = tiny_frame.groupby("vendor").agg({"power": "max"})
        assert result["power"].max() == 720.0

    def test_agg_aggregation_object(self, tiny_frame):
        result = tiny_frame.groupby("vendor").agg({"med": Aggregation("power", "median")})
        assert "med" in result

    def test_agg_callable(self, tiny_frame):
        result = tiny_frame.groupby("vendor").agg(
            {"spread": Aggregation("power", lambda col: (col.max() or 0) - (col.min() or 0))}
        )
        assert result["spread"].max() > 0

    def test_agg_unknown_function_rejected(self, tiny_frame):
        with pytest.raises(GroupByError):
            tiny_frame.groupby("vendor").agg({"x": ("power", "harmonic")})

    def test_agg_unknown_column_rejected(self, tiny_frame):
        with pytest.raises(GroupByError):
            tiny_frame.groupby("vendor").agg({"x": ("bogus", "mean")})

    def test_multi_key_grouping(self, tiny_frame):
        result = tiny_frame.groupby(["vendor", "sockets"]).agg({"n": ("year", "size")})
        assert len(result) == 3
        assert set(result.columns) == {"vendor", "sockets", "n"}

    def test_apply(self, tiny_frame):
        result = tiny_frame.groupby("vendor").apply(
            lambda sub: {"rows": len(sub), "latest": sub["year"].max()}
        )
        amd = result.filter(result["vendor"] == "AMD").row(0)
        assert amd["rows"] == 3
        assert amd["latest"] == 2023

    def test_get_group(self, tiny_frame):
        sub = tiny_frame.groupby("vendor").get_group(("AMD",))
        assert len(sub) == 3

    def test_get_group_missing(self, tiny_frame):
        with pytest.raises(GroupByError):
            tiny_frame.groupby("vendor").get_group(("VIA",))

    def test_size(self, tiny_frame):
        sizes = tiny_frame.groupby("vendor").size()
        assert sizes["count"].sum() == 6

    def test_unknown_key_rejected(self, tiny_frame):
        with pytest.raises(GroupByError):
            tiny_frame.groupby("bogus")

    def test_empty_keys_rejected(self, tiny_frame):
        with pytest.raises(GroupByError):
            tiny_frame.groupby([])

    def test_missing_key_values_form_their_own_group(self):
        frame = Frame.from_dict({"k": ["a", None, "a"], "v": [1, 2, 3]})
        grouped = frame.groupby("k")
        assert grouped.ngroups == 2

    @pytest.mark.parametrize("engine", ["vector", "python"])
    def test_missing_int_key_never_merges_with_sentinel_zero(self, engine):
        # Masked int entries keep a 0 payload in the backing array; grouping
        # must see the mask, not the sentinel.
        frame = Frame.from_dict({"k": [0, None, 0, None], "v": [1, 2, 3, 4]})
        result = frame.groupby("k", engine=engine).agg({"v": "sum"})
        assert result["k"].to_list() == [0, None]
        assert result["v"].to_list() == [4.0, 6.0]

    @pytest.mark.parametrize("engine", ["vector", "python"])
    def test_nan_float_keys_group_as_missing(self, engine):
        # NaN and masked float keys are both "missing": one null group, not
        # one pathological singleton group per NaN row.
        frame = Frame.from_dict(
            {"k": [float("nan"), None, 1.0, float("nan")], "v": [1, 2, 3, 4]}
        )
        grouped = frame.groupby("k", engine=engine)
        assert grouped.ngroups == 2
        result = grouped.agg({"v": "sum"})
        assert result["k"].to_list() == [None, 1.0]
        assert result["v"].to_list() == [7.0, 3.0]

    @pytest.mark.parametrize("engine", ["vector", "python"])
    def test_multi_key_missing_components_stay_distinct(self, engine):
        frame = Frame.from_dict(
            {"a": ["x", "x", None, None], "b": [None, 1, 1, None], "v": [1, 2, 3, 4]}
        )
        grouped = frame.groupby(["a", "b"], engine=engine)
        assert [key for key, _ in grouped.groups()] == [
            ("x", None), ("x", 1), (None, 1), (None, None)
        ]


class TestJoin:
    @pytest.fixture()
    def left(self):
        return Frame.from_dict({"cpu": ["A", "B", "C"], "power": [100, 200, 300]})

    @pytest.fixture()
    def right(self):
        return Frame.from_dict({"cpu": ["A", "B", "D"], "vendor": ["Intel", "AMD", "Arm"]})

    def test_inner_join(self, left, right):
        result = join(left, right, on="cpu")
        assert len(result) == 2
        assert set(result["vendor"].to_list()) == {"Intel", "AMD"}

    def test_left_join_keeps_unmatched(self, left, right):
        result = join(left, right, on="cpu", how="left")
        assert len(result) == 3
        assert result.filter(result["cpu"] == "C")["vendor"][0] is None

    def test_outer_join_adds_right_only_rows(self, left, right):
        result = join(left, right, on="cpu", how="outer")
        assert len(result) == 4
        d_row = result.filter(result["cpu"] == "D").row(0)
        assert d_row["power"] is None
        assert d_row["vendor"] == "Arm"

    def test_duplicate_keys_multiply(self):
        left = Frame.from_dict({"k": ["x", "x"], "a": [1, 2]})
        right = Frame.from_dict({"k": ["x"], "b": [10]})
        assert len(join(left, right, on="k")) == 2

    def test_overlapping_value_columns_get_suffix(self):
        left = Frame.from_dict({"k": ["x"], "v": [1]})
        right = Frame.from_dict({"k": ["x"], "v": [2]})
        result = join(left, right, on="k")
        assert "v" in result and "v_right" in result

    def test_missing_key_column_rejected(self, left):
        with pytest.raises(JoinError):
            join(left, Frame.from_dict({"other": [1]}), on="cpu")

    def test_unknown_how_rejected(self, left, right):
        with pytest.raises(JoinError):
            join(left, right, on="cpu", how="cross")

    def test_empty_key_list_rejected(self, left, right):
        with pytest.raises(JoinError):
            join(left, right, on=[])

    def test_frame_method_join(self, left, right):
        assert len(left.join(right, on="cpu")) == 2

    @pytest.mark.parametrize("engine", ["vector", "python"])
    def test_missing_keys_never_match(self, engine):
        # SQL NULL semantics: a missing key matches nothing — not even
        # another missing key — instead of silently pairing null rows.
        left = Frame.from_dict({"k": ["a", None], "a": [1, 2]})
        right = Frame.from_dict({"k": ["a", None], "b": [10, 20]})
        inner = join(left, right, on="k", engine=engine)
        assert inner.to_records() == [{"k": "a", "a": 1, "b": 10}]
        outer = join(left, right, on="k", how="outer", engine=engine)
        assert outer.to_records() == [
            {"k": "a", "a": 1, "b": 10},
            {"k": None, "a": 2, "b": None},
            {"k": None, "a": None, "b": 20},
        ]

    @pytest.mark.parametrize("engine", ["vector", "python"])
    def test_missing_int_key_never_matches_sentinel_zero(self, engine):
        left = Frame.from_dict({"k": [0, None], "a": [1, 2]})
        right = Frame.from_dict({"k": [None, 0], "b": [10, 20]})
        result = join(left, right, on="k", how="left", engine=engine)
        assert result.to_records() == [
            {"k": 0, "a": 1, "b": 20},
            {"k": None, "a": 2, "b": None},
        ]

    @pytest.mark.parametrize("engine", ["vector", "python"])
    def test_nan_float_keys_are_missing(self, engine):
        left = Frame.from_dict({"k": [1.0, float("nan")], "a": [1, 2]})
        right = Frame.from_dict({"k": [float("nan"), 1.0], "b": [10, 20]})
        assert join(left, right, on="k", engine=engine).to_records() == [
            {"k": 1.0, "a": 1, "b": 20}
        ]
