"""Campaign service: protocol framing, job lifecycle, dedup, event streams."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import CampaignSpec, reduce_frame, run_campaign, stream_campaign
from repro.errors import CampaignError
from repro.service import CampaignService, ServiceClient, recv_message, send_message
from repro.service.protocol import MAX_LINE_BYTES, ProtocolError
from repro.service.server import read_service_address

FAST_BASE = {"load_levels": [1.0, 0.0], "measurement_noise": False}


def spec_payload(name="svc-test", seeds=(1, 2)) -> dict:
    return CampaignSpec(
        name=name,
        sweep={"cpu_model": ["EPYC 9654", "Xeon X5670"], "seed": list(seeds)},
        base=FAST_BASE,
    ).to_dict()


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_roundtrip_is_one_line(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "ping", "n": 1})
        raw = buffer.getvalue()
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        buffer.seek(0)
        assert recv_message(buffer) == {"op": "ping", "n": 1}

    def test_closed_stream_returns_none(self):
        assert recv_message(io.BytesIO(b"")) is None

    def test_malformed_line_raises(self):
        with pytest.raises(ProtocolError, match="malformed"):
            recv_message(io.BytesIO(b"{not json\n"))
        with pytest.raises(ProtocolError, match="JSON object"):
            recv_message(io.BytesIO(b"[1, 2]\n"))

    def test_oversized_line_rejected(self):
        line = b"x" * (MAX_LINE_BYTES + 10) + b"\n"
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(io.BytesIO(line))


# --------------------------------------------------------------------------- #
# Service end to end (one live service per module)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-root")
    service = CampaignService(root, shard_size=2)
    service.start()
    yield service
    service.stop()


@pytest.fixture(scope="module")
def client(service) -> ServiceClient:
    host, port = service.address
    return ServiceClient(host, port, timeout=120.0)


class TestServiceLifecycle:
    def test_ping_and_published_address(self, service, client):
        assert client.ping()
        assert read_service_address(service.root) == service.address

    def test_submit_runs_to_completion(self, client):
        job = client.submit(spec_payload(name="lifecycle"))
        assert job["state"] in {"queued", "running", "complete"}
        assert job["n_units"] == 4 and not job["deduped"]
        result = client.wait(job["job"])
        assert result["state"] == "complete"
        assert result["completed"] == 4 and not result["failures"]

    def test_result_matches_local_run_bit_for_bit(self, client, tmp_path):
        payload = spec_payload(name="identity", seeds=(5, 6))
        result = client.wait(client.submit(payload)["job"])
        local = stream_campaign(
            CampaignSpec.from_dict(payload), tmp_path / "local", shard_size=2
        )
        assert result["aggregate"] == local.aggregate.to_dict()
        unsharded = run_campaign(CampaignSpec.from_dict(payload), tmp_path / "flat")
        assert result["aggregate"] == reduce_frame(unsharded.frame).to_dict()

    def test_identical_submission_dedups_to_same_job(self, client):
        payload = spec_payload(name="dedup")
        first = client.submit(payload)
        second = client.submit(payload)
        assert second["job"] == first["job"]
        assert second["deduped"] and not first["deduped"]

    def test_overlapping_units_dedup_across_jobs(self, client):
        # Two *different* jobs (different names => different job ids) with
        # identical sweeps: the shared results/ cache means the second job
        # simulates nothing.
        seeds = (31, 32)
        first = client.wait(client.submit(spec_payload(name="warm-a", seeds=seeds))["job"])
        second = client.wait(client.submit(spec_payload(name="warm-b", seeds=seeds))["job"])
        assert first["simulated"] == 4
        assert second["simulated"] == 0 and second["cache_hits"] == 4
        assert second["aggregate"] == first["aggregate"]

    def test_status_reports_shard_progress(self, client):
        job = client.submit(spec_payload(name="status-probe"))
        status = client.wait(job["job"]) and client.status(job["job"])
        assert status["state"] == "complete"
        assert status["shards"]["complete"] == 2
        assert status["shards"]["rows_flushed"] == 4

    def test_events_stream_covers_campaign_lifecycle(self, client):
        job = client.submit(spec_payload(name="eventful"))
        client.wait(job["job"])
        names = [event["event"] for event in client.events(job["job"])]
        # The scheduler journals the job lifecycle around the campaign's own
        # telemetry: queued/started bracket the start, the serial finalize
        # pass closes with campaign_complete.
        assert names[0] == "job_queued"
        assert "campaign_start" in names
        assert "shard_flush" in names
        assert names[-1] == "campaign_complete"

    def test_jobs_listing_includes_submitted(self, client):
        client.wait(client.submit(spec_payload(name="listed"))["job"])
        listing = client.jobs()
        assert any(job["name"] == "listed" for job in listing)
        assert all(job["state"] != "failed" for job in listing)

    def test_errors_are_reported_not_dropped(self, client):
        with pytest.raises(CampaignError, match="unknown job"):
            client.status("no-such-job")
        with pytest.raises(CampaignError, match="invalid spec"):
            client.submit({"name": "bad"})  # no sweep axes
        with pytest.raises(CampaignError, match="unknown op"):
            client._checked(client._roundtrip({"op": "frobnicate"}))

    def test_result_before_completion_names_state(self, service):
        # Ask for the result of a job that is still queued: the error names
        # the state so clients know to poll rather than despair.
        payload = spec_payload(name="impatient", seeds=(71, 72))
        spec = CampaignSpec.from_dict(payload)
        job, _ = service.submit(spec)  # may start running immediately
        response = service._op_result({"op": "result", "job": job.job_id})
        if not response["ok"]:
            assert response["state"] in {"queued", "running"}
        host, port = service.address
        ServiceClient(host, port, timeout=120.0).wait(job.job_id)

    def test_worker_fanout_through_service(self, client, tmp_path):
        payload = spec_payload(name="svc-workers", seeds=(41, 42, 43))
        job = client.submit(payload, workers=2)
        result = client.wait(job["job"])
        # n_workers reports the shared pool size, not the per-job cap: the
        # job's shards ran on the scheduler's pool regardless of its cap.
        assert result["n_workers"] >= 2 and result["completed"] == 6
        local = stream_campaign(
            CampaignSpec.from_dict(payload), tmp_path / "serial", shard_size=2
        )
        assert result["aggregate"] == local.aggregate.to_dict()


class TestServiceShutdown:
    def test_shutdown_op_stops_service(self, tmp_path):
        service = CampaignService(tmp_path / "root", shard_size=2)
        host, port = service.start()
        client = ServiceClient(host, port)
        client.shutdown()
        service.wait()  # returns because the shutdown op fired stop()
        assert service._stopped.is_set()

    def test_read_address_missing_root_errors(self, tmp_path):
        with pytest.raises(CampaignError, match="no service address"):
            read_service_address(tmp_path / "nowhere")

    def test_service_json_contents(self, tmp_path):
        service = CampaignService(tmp_path / "root")
        host, port = service.start()
        try:
            data = json.loads(
                (service.root / "service.json").read_text(encoding="utf-8")
            )
            assert (data["host"], data["port"]) == (host, port)
            assert isinstance(data["pid"], int)
        finally:
            service.stop()
