"""Session layer: artifact store, execution policy, cached stages, registries."""

from dataclasses import replace

import pytest

import repro.api as api
from repro.errors import ArtifactError, SessionError
from repro.parallel import ParallelConfig
from repro.session import (
    ArtifactStore,
    ExecutionPolicy,
    Session,
    digest_json,
    digest_tree,
)
from repro.simulator import WORKLOAD_PRESETS, SimulationOptions

RUNS = 40
SEED = 3


# --------------------------------------------------------------------------- #
# ArtifactStore + digests
# --------------------------------------------------------------------------- #
class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = digest_json({"stage": "x"})
        assert store.get(key) is None and key not in store
        store.put(key, {"rows": [1, 2], "name": "x"})
        assert key in store
        assert store.get(key) == {"rows": [1, 2], "name": "x"}
        assert len(store) == 1 and list(store.keys()) == [key]

    def test_malformed_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError):
            store.get("../../etc/passwd")

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        key = digest_json("payload")
        ArtifactStore(tmp_path, schema=1).put(key, {"a": 1})
        assert ArtifactStore(tmp_path, schema=2).get(key) is None
        assert ArtifactStore(tmp_path, schema=1).get(key) == {"a": 1}

    def test_scope_isolates_kinds(self, tmp_path):
        root = ArtifactStore(tmp_path)
        key = digest_json("shared")
        root.scope("corpus").put(key, {"kind": "corpus"})
        assert root.scope("dataset").get(key) is None
        assert root.scope("corpus").get(key) == {"kind": "corpus"}
        with pytest.raises(ArtifactError):
            root.scope("../evil")

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(digest_json(1), {"v": 1})
        store.put(digest_json(2), {"v": 2})
        assert store.clear() == 2 and len(store) == 0

    def test_array_sidecar_roundtrip_and_clear(self, tmp_path):
        import numpy as np

        store = ArtifactStore(tmp_path)
        key = digest_json("columnar")
        assert store.get_arrays(key) is None
        store.put(key, {"n": 3}, arrays={"x": np.array([1.5, np.nan, 2.0])})
        assert store.sidecar_path(key).exists()
        arrays = store.get_arrays(key)
        assert list(arrays) == ["x"]
        assert np.array_equal(arrays["x"], [1.5, np.nan, 2.0], equal_nan=True)
        # Rewriting without arrays drops the stale sidecar.
        store.put(key, {"n": 3})
        assert store.get_arrays(key) is None
        store.put(key, {"n": 3}, arrays={"x": np.zeros(2)})
        assert store.clear() == 1
        assert not store.sidecar_path(key).exists()


class TestColumnarCodec:
    def test_frame_round_trip_preserves_kinds_values_masks(self):
        import numpy as np

        from repro.frame import Frame
        from repro.session.columnar import frame_from_arrays, frame_to_arrays

        frame = Frame.from_dict(
            {
                "f": [1.5, None, float("nan"), -0.0],
                "i": [1, None, 3, 4],
                "b": [True, False, None, True],
                "s": ["x", "", None, "long string"],
            }
        )
        meta, arrays = frame_to_arrays(frame)
        assert len(arrays) == 5  # masks + one member per kind
        restored = frame_from_arrays(meta, arrays)
        assert restored.columns == frame.columns
        assert restored.equals(frame)
        for name in frame.columns:
            assert restored[name].kind == frame[name].kind
            assert np.array_equal(restored[name].mask, frame[name].mask)
        # "" survives as a value, None as missing (they are distinct).
        assert restored["s"].to_list() == ["x", "", None, "long string"]

    def test_trailing_nul_strings_round_trip(self):
        # NumPy unicode strips trailing NULs; the codec's pad sentinel must
        # bring them back bit for bit.
        from repro.frame import Frame
        from repro.session.columnar import frame_from_arrays, frame_to_arrays

        frame = Frame.from_dict(
            {"s": ["a\x00", "a", "\x00", None, "mid\x00dle"], "t": ["plain", "b", "c", "d", "e"]}
        )
        meta, arrays = frame_to_arrays(frame)
        restored = frame_from_arrays(meta, arrays)
        assert restored["s"].to_list() == ["a\x00", "a", "\x00", None, "mid\x00dle"]
        assert restored["t"].to_list() == frame["t"].to_list()
        assert restored.equals(frame)

    def test_corrupt_sidecar_raises_artifact_error(self, tmp_path):
        import numpy as np
        import pytest

        from repro.errors import ArtifactError

        store = ArtifactStore(tmp_path)
        key = digest_json("corrupt")
        store.put(key, {"n": 1}, arrays={"x": np.zeros(2)})
        store.sidecar_path(key).write_bytes(b"not a zip archive")
        with pytest.raises(ArtifactError):
            store.get_arrays(key)

    def test_str_columns_keep_independent_widths(self):
        # One member per string column: a long value in one column must not
        # widen the storage of every other string column's cells.
        from repro.frame import Frame
        from repro.session.columnar import frame_from_arrays, frame_to_arrays

        frame = Frame.from_dict(
            {"short": ["a", "b"], "long": ["x" * 500, None]}
        )
        meta, arrays = frame_to_arrays(frame)
        assert arrays["str0"].dtype.itemsize < arrays["str1"].dtype.itemsize
        assert frame_from_arrays(meta, arrays).equals(frame)

    def test_empty_and_zero_row_frames(self):
        from repro.frame import Frame
        from repro.session.columnar import frame_from_arrays, frame_to_arrays

        for frame in (Frame(), Frame.from_dict({"a": [], "s": []})):
            meta, arrays = frame_to_arrays(frame)
            restored = frame_from_arrays(meta, arrays)
            assert restored.columns == frame.columns
            assert len(restored) == 0

    def test_digest_json_canonicalisation(self):
        assert digest_json({"b": 1, "a": (1, 2)}) == digest_json({"a": [1, 2], "b": 1})
        assert digest_json({"a": 1}) != digest_json({"a": 2})

    def test_digest_tree_tracks_content_and_names(self, tmp_path):
        (tmp_path / "a.txt").write_text("alpha")
        (tmp_path / "b.txt").write_text("beta")
        base = digest_tree(tmp_path)
        assert digest_tree(tmp_path) == base  # deterministic
        (tmp_path / "b.txt").write_text("BETA")
        edited = digest_tree(tmp_path)
        assert edited != base
        (tmp_path / "b.txt").rename(tmp_path / "c.txt")
        assert digest_tree(tmp_path) != edited  # rename also invalidates


# --------------------------------------------------------------------------- #
# ExecutionPolicy
# --------------------------------------------------------------------------- #
class TestExecutionPolicy:
    def test_default_matches_historic_behaviour(self):
        policy = ExecutionPolicy()
        assert policy.parallel_config().backend == "serial"
        assert policy.use_batch_kernel

    def test_mode_to_backend_mapping(self):
        assert ExecutionPolicy(mode="serial").parallel_config().backend == "serial"
        assert ExecutionPolicy(mode="thread").parallel_config().backend == "thread"
        config = ExecutionPolicy(mode="process", workers=3).parallel_config()
        assert config.backend == "process" and config.max_workers == 3

    def test_kernel_resolution(self):
        assert not ExecutionPolicy(mode="serial").use_batch_kernel
        assert ExecutionPolicy(mode="process").use_batch_kernel
        assert ExecutionPolicy(mode="serial", kernel="batch").use_batch_kernel
        assert not ExecutionPolicy(mode="process", kernel="scalar").use_batch_kernel

    def test_validation(self):
        with pytest.raises(SessionError):
            ExecutionPolicy(mode="gpu")
        with pytest.raises(SessionError):
            ExecutionPolicy(kernel="magic")
        with pytest.raises(SessionError):
            ExecutionPolicy(chunk_size=0)

    def test_from_parallel_and_jobs(self):
        assert ExecutionPolicy.from_parallel(None).mode == "batch"
        assert ExecutionPolicy.from_parallel(None, batch=False).mode == "serial"
        policy = ExecutionPolicy.from_parallel(
            ParallelConfig(max_workers=4, backend="process")
        )
        assert policy.mode == "process" and policy.workers == 4
        assert ExecutionPolicy.from_jobs(1).parallel_config().backend == "serial"
        assert ExecutionPolicy.from_jobs(8).parallel_config().backend == "process"


# --------------------------------------------------------------------------- #
# Session stages + caching
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return tmp_path_factory.mktemp("session-ws")


@pytest.fixture(scope="module")
def warm_frame(workspace):
    """Run the pipeline cold once; later tests reuse the warm workspace."""
    with Session(workspace=workspace) as session:
        return session.dataset(runs=RUNS, seed=SEED).result()


def _fail(*args, **kwargs):  # pragma: no cover - called only on cache misses
    raise AssertionError("stage recomputed despite a warm workspace")


class TestSessionCaching:
    def test_handles_are_lazy(self, workspace):
        with Session(workspace=workspace) as session:
            handle = session.corpus(runs=9999, seed=1)  # would be expensive
            assert handle.key and not handle.in_memory

    def test_same_stage_memoized_within_session(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            first = session.dataset(runs=RUNS, seed=SEED).result()
            second = session.dataset(runs=RUNS, seed=SEED).result()
            assert first is second  # computed once

    def test_warm_workspace_skips_generation_and_parsing(
        self, workspace, warm_frame, monkeypatch
    ):
        import repro.parser
        import repro.reportgen
        from repro.simulator.director import RunDirector

        monkeypatch.setattr(repro.parser, "parse_directory", _fail)
        monkeypatch.setattr(repro.reportgen, "generate_corpus_files", _fail)
        monkeypatch.setattr(RunDirector, "run", _fail)
        with Session(workspace=workspace) as session:
            frame = session.dataset(runs=RUNS, seed=SEED).result()
            assert frame.equals(warm_frame)
            result = session.analysis(table1=False).result()
            assert result.unfiltered.equals(frame)
            assert "Reproduction report" in result.summary()

    def test_warm_frame_is_bit_identical_to_api_load(self, workspace, warm_frame):
        # warm_frame came through the parse-bypass (no report was ever
        # rendered); materialise the corpus and push the same runs through
        # the full render -> parse text path to pin bit-identity end to end.
        with Session(workspace=workspace) as session:
            corpus_dir = session.corpus(runs=RUNS, seed=SEED).result().directory
        with pytest.deprecated_call():
            fresh = api.load_dataset(corpus_dir)
        assert fresh.equals(warm_frame)
        assert fresh.columns == warm_frame.columns

    def test_corpus_mutation_invalidates_record(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            session.corpus(runs=RUNS, seed=SEED).result()  # materialise
        with Session(workspace=workspace) as session:  # memo-free view
            handle = session.corpus(runs=RUNS, seed=SEED)
            assert handle.is_cached
            victim = next(iter(handle.directory.glob("*.txt")))
            victim.unlink()
            assert not handle.is_cached  # file count no longer matches
            handle.result()  # regenerates in place
            assert handle.is_cached

    def test_external_corpus_keyed_by_content(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            source = session.corpus(runs=RUNS, seed=SEED).result().directory
            by_path = session.dataset(corpus=source)
            by_handle = session.dataset(corpus=session.corpus(runs=RUNS, seed=SEED))
            assert by_path.key != by_handle.key  # different key derivations
            assert by_path.result().equals(warm_frame)

    def test_dataset_summary_matches_parse_report(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            dataset = session.dataset(runs=RUNS, seed=SEED)
            summary = dataset.summary()
            report = dataset.parse_report()
            assert summary.describe() == report.describe()

    def test_analysis_distinct_params_distinct_keys(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            a = session.analysis(table1=False)
            b = session.analysis(table1=False, figures=True)
            assert a.key != b.key

    def test_table1_memoized(self, workspace):
        with Session(workspace=workspace) as session:
            rows = session.table1()
            assert rows and rows is session.table1()

    def test_ephemeral_workspace_removed_on_close(self):
        session = Session()
        workspace = session.workspace
        assert workspace.is_dir()
        session.close()
        assert not workspace.exists()


# --------------------------------------------------------------------------- #
# Binary dataset artifacts (.npz sidecar) + parse bypass
# --------------------------------------------------------------------------- #
class TestDatasetArtifacts:
    def test_dataset_persists_npz_sidecar_not_json_rows(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            handle = session.dataset(runs=RUNS, seed=SEED)
            store = session._store_for("dataset")
            payload = store.get(handle.key)
            assert payload is not None
            assert "rows" not in payload and "columns" in payload
            assert payload["parsed_count"] == RUNS
            assert store.sidecar_path(handle.key).exists()

    def test_legacy_json_row_artifact_still_loads(self, workspace, warm_frame):
        # A workspace written before the .npz format holds {"rows": [...]}
        # under the same schema; it must reload bit-identically, not miss.
        with Session(workspace=workspace) as session:
            handle = session.dataset(runs=RUNS, seed=SEED)
            report = handle.parse_report()
            legacy = {
                "directory": str(handle.directory),
                "rows": [record.to_dict() for record in report.records],
                "rejected": [[f.file_name, f.reason] for f in report.rejected],
            }
            session._store_for("dataset").put(handle.key, legacy)
        with Session(workspace=workspace) as session:
            frame = session.dataset(runs=RUNS, seed=SEED).result()
            assert frame.equals(warm_frame)
            summary = session.dataset(runs=RUNS, seed=SEED).summary()
            assert summary.parsed_count == RUNS
        # Restore the binary artifact for the tests that follow.
        with Session(workspace=workspace) as session:
            session._store_for("dataset").clear()
            session.dataset(runs=RUNS, seed=SEED).result()

    def test_pruned_sidecar_recomputes_instead_of_failing(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            handle = session.dataset(runs=RUNS, seed=SEED)
            store = session._store_for("dataset")
            store.sidecar_path(handle.key).unlink()
        with Session(workspace=workspace) as session:
            handle = session.dataset(runs=RUNS, seed=SEED)
            assert handle.result().equals(warm_frame)
            assert session._store_for("dataset").sidecar_path(handle.key).exists()

    def test_bypass_dataset_never_renders_or_parses(self, tmp_path, monkeypatch):
        # The cold fast path must go straight from simulation results to
        # records: rendering a report or invoking the parser is a bug.
        import repro.parser
        import repro.reportgen
        import repro.reportgen.textreport

        monkeypatch.setattr(repro.parser, "parse_directory", _fail)
        monkeypatch.setattr(repro.reportgen, "generate_corpus_files", _fail)
        monkeypatch.setattr(repro.reportgen.textreport, "render_report", _fail)
        with Session(workspace=tmp_path / "ws") as session:
            frame = session.dataset(runs=RUNS, seed=SEED).result()
            assert len(frame) == RUNS
            assert not (tmp_path / "ws" / "corpora").exists()

    def test_text_path_dataset_is_bit_identical(self, workspace, warm_frame):
        text_ws = workspace / "text-route"
        with Session(workspace=text_ws) as session:
            frame = session.dataset(runs=RUNS, seed=SEED, text_path=True).result()
            assert frame.equals(warm_frame)
            assert any((text_ws / "corpora").iterdir())


# --------------------------------------------------------------------------- #
# Campaigns through the session
# --------------------------------------------------------------------------- #
SPEC = {
    "name": "session-sweep",
    "sweep": {"cpu_model": ["Xeon X5670", "EPYC 9654"], "seed": [1, 2]},
    "base": {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]},
}


class TestSessionCampaign:
    def test_campaign_runs_and_memoizes(self, workspace):
        with Session(workspace=workspace) as session:
            handle = session.campaign(SPEC)
            result = handle.result()
            assert result.total_units == 4 and not result.failures
            assert handle.status().is_complete
            assert session.campaign(SPEC).result() is result  # memo hit

    def test_campaign_store_replays_across_sessions(self, workspace):
        with Session(workspace=workspace) as session:
            again = session.campaign(SPEC)
            assert again.is_cached
            result = again.result()
            assert result.simulated == 0 and result.cache_hits == 4

    def test_workload_preset_fills_option_axes(self, workspace):
        with Session(workspace=workspace) as session:
            spec = {"name": "wl", "sweep": {"cpu_model": ["Xeon X5670"]}}
            handle = session.campaign(spec, workload="fast")
            assert handle.spec.base["load_levels"] == WORKLOAD_PRESETS[
                "fast"
            ].load_levels
            explicit = {**spec, "base": {"load_levels": [1.0, 0.2, 0.0]}}
            kept = session.campaign(explicit, workload="fast")
            assert kept.spec.base["load_levels"] == (1.0, 0.2, 0.0)


# --------------------------------------------------------------------------- #
# Extension registries
# --------------------------------------------------------------------------- #
class TestRegistries:
    def test_register_workload_changes_corpus_key(self, workspace):
        with Session(workspace=workspace) as session:
            session.register_workload(
                "short", SimulationOptions(load_levels=(1.0, 0.5, 0.0))
            )
            assert "short" in session.workloads
            assert session.corpus(workload="short").key != session.corpus().key
            with pytest.raises(SessionError):
                session.register_workload("short", SimulationOptions())
            with pytest.raises(SessionError):
                session.corpus(workload="nope")
            with pytest.raises(SessionError):
                session.corpus(workload="short", options=SimulationOptions())

    def test_register_analysis(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            session.register_analysis(
                "mean-eff", lambda frame: frame["overall_efficiency"].mean()
            )
            assert session.analyses == ("mean-eff",)
            handle = session.analysis(
                session.dataset(runs=RUNS, seed=SEED), name="mean-eff"
            )
            assert handle.result() == pytest.approx(
                warm_frame["overall_efficiency"].mean()
            )
            with pytest.raises(SessionError):
                session.register_analysis("paper", lambda frame: frame)
            with pytest.raises(SessionError):
                session.analysis(name="unknown").result()

    def test_register_platform_extends_catalog_and_keys(self, workspace):
        with Session(workspace=workspace) as session:
            base_key = session.campaign(SPEC).key
            entry = session.catalog.get("Xeon X5670")
            custom = replace(entry, cpu=replace(entry.cpu, model="Xeon X9999"))
            session.register_platform(custom)
            assert session.catalog.get("Xeon X9999").cpu.model == "Xeon X9999"
            assert session.campaign(SPEC).key != base_key  # catalog in the key
            with pytest.raises(SessionError):
                session.register_platform(custom)
            session.register_platform(custom, replace=True)
            sweep = session.campaign(
                {
                    "name": "custom",
                    "sweep": {"cpu_model": ["Xeon X9999"]},
                    "base": {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]},
                }
            ).result()
            assert sweep.total_units == 1 and not sweep.failures


# --------------------------------------------------------------------------- #
# Deprecated api shims
# --------------------------------------------------------------------------- #
class TestApiShims:
    def test_every_shim_warns(self, tmp_path):
        with pytest.deprecated_call():
            frame = api.quick_dataset(n_runs=RUNS, seed=SEED, directory=tmp_path / "c")
        with pytest.deprecated_call():
            report = api.parse_corpus(tmp_path / "c")
        assert report.parsed_count == len(frame)
        with pytest.deprecated_call():
            api.analyze(frame, include_table1=False)

    def test_quick_dataset_accepts_parallel(self, tmp_path):
        with pytest.deprecated_call():
            frame = api.quick_dataset(
                n_runs=RUNS,
                seed=SEED,
                directory=tmp_path / "p",
                parallel=ParallelConfig(backend="serial"),
            )
        assert len(frame) == RUNS

    def test_analysis_result_comparison_is_paper_comparison(self, analysis_result):
        from repro.core.report import PaperComparison

        assert isinstance(analysis_result.comparison, PaperComparison)

    def test_run_campaign_shim_matches_session(self, tmp_path, workspace):
        with pytest.deprecated_call():
            shim = api.run_campaign(SPEC, tmp_path / "store")
        with Session(workspace=workspace) as session:
            cached = session.campaign(SPEC).result()
        assert shim.frame.equals(cached.frame)


# --------------------------------------------------------------------------- #
# Frame identity guarantee of the dataset cache
# --------------------------------------------------------------------------- #
def test_dataset_json_roundtrip_is_exact(workspace, warm_frame):
    # Every column must survive the rows -> JSON -> rows rebuild exactly:
    # dtype-sensitive consumers (filters, binning) see no difference between
    # a cold parse and a warm reload.
    with Session(workspace=workspace) as session:
        session.clear_memo()
        reloaded = session.dataset(runs=RUNS, seed=SEED).result()
    assert reloaded.columns == warm_frame.columns
    assert reloaded.equals(warm_frame)
    for name in warm_frame.columns:
        assert reloaded[name].to_list() == warm_frame[name].to_list(), name


class TestReviewRegressions:
    def test_dataset_explicit_args_override_last_corpus(self, workspace, warm_frame):
        with Session(workspace=workspace) as session:
            session.corpus(runs=RUNS, seed=SEED)  # becomes _last
            other = session.dataset(runs=RUNS, seed=99)  # explicit args win
            assert other.corpus.seed == 99
            implicit = session.dataset()  # no args -> most recent
            assert implicit.corpus.seed == 99

    def test_campaign_key_independent_of_max_units(self, workspace):
        spec = {
            "name": "bounded",
            "sweep": {"cpu_model": ["Xeon X5670"], "seed": [1, 2, 3]},
            "base": {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]},
        }
        with Session(workspace=workspace) as session:
            bounded = session.campaign(spec, max_units=1)
            full = session.campaign(spec)
            assert bounded.key == full.key
            assert bounded.store_dir == full.store_dir
            partial = bounded.result()
            assert partial.simulated == 1
            # Bounded runs are never memoized: a second call makes progress.
            assert session.campaign(spec, max_units=1).result().cache_hits == 1
            completed = full.result()
            assert completed.cache_hits == 2 and completed.simulated == 1

    def test_none_valued_analysis_computed_once(self, workspace, warm_frame):
        calls = {"n": 0}

        def effect(frame):
            calls["n"] += 1
            return None

        with Session(workspace=workspace) as session:
            session.register_analysis("effect", effect)
            handle = session.analysis(
                session.dataset(runs=RUNS, seed=SEED), name="effect"
            )
            assert handle.result() is None
            assert handle.result() is None
            assert calls["n"] == 1

    def test_explicit_catalog_object_is_kept(self):
        from repro.market.catalog import Catalog, default_catalog

        custom = Catalog(default_catalog().entries[:3])
        with Session(catalog=custom) as session:
            assert session.catalog is custom

    def test_external_directory_dataset_not_trusted_across_sessions(self, tmp_path):
        workspace = tmp_path / "ws"
        external = tmp_path / "external"
        with Session(workspace=workspace) as session:
            corpus = session.corpus(runs=RUNS, seed=SEED, directory=external)
            baseline = session.dataset(corpus=corpus).result()
        # The caller edits their directory behind the session's back.
        donor = next(iter(external.glob("*.txt")))
        (external / "zz-extra.txt").write_text(donor.read_text())
        with Session(workspace=workspace) as session:
            corpus = session.corpus(runs=RUNS, seed=SEED, directory=external)
            refreshed = session.dataset(corpus=corpus).result()
        assert len(refreshed) == len(baseline) + 1  # stale rows not served

    def test_explicit_directory_corpus_bypasses_memo(self, tmp_path):
        with Session(workspace=tmp_path / "ws") as session:
            session.corpus(runs=RUNS, seed=SEED).result()  # memoized
            out = tmp_path / "out"
            report = session.corpus(runs=RUNS, seed=SEED, directory=out).result()
            assert out.is_dir() and report.directory == out  # actually written
            # And the other order: an explicit report must not be served for
            # a workspace handle whose directory was never materialised.
            workspace_handle = session.corpus(runs=RUNS, seed=SEED)
            assert workspace_handle.result().directory == workspace_handle.directory

    def test_default_catalog_not_shipped_to_workers(self, tmp_path):
        with Session(workspace=tmp_path / "ws") as session:
            assert session._worker_catalog() is None
            entry = session.catalog.get("Xeon X5670")
            session.register_platform(
                replace(entry, cpu=replace(entry.cpu, model="Xeon X9999"))
            )
            assert session._worker_catalog() is session.catalog
        from repro.market.catalog import Catalog, default_catalog

        custom = Catalog(default_catalog().entries[:3])
        with Session(catalog=custom) as session:
            assert session._worker_catalog() is custom

    def test_policy_preserves_serial_threshold(self):
        config = ParallelConfig(
            max_workers=8, backend="process", serial_threshold=0
        )
        policy = ExecutionPolicy.from_parallel(config)
        assert policy.parallel_config().serial_threshold == 0
        assert ExecutionPolicy().parallel_config().serial_threshold == (
            ParallelConfig().serial_threshold
        )
        with pytest.raises(SessionError):
            ExecutionPolicy(serial_threshold=-1)

    def test_explicit_corpus_handle_generates_once_per_instance(
        self, tmp_path, monkeypatch
    ):
        import repro.reportgen

        original = repro.reportgen.generate_corpus_files
        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(repro.reportgen, "generate_corpus_files", counting)
        with Session(workspace=tmp_path / "ws") as session:
            corpus = session.corpus(runs=RUNS, seed=SEED, directory=tmp_path / "out")
            dataset = session.dataset(corpus=corpus)
            dataset.parse_report()
            dataset.result()
            corpus.result()
            assert calls["n"] == 1  # one handle, one generation

    def test_campaign_memo_distinguishes_stores(self, tmp_path):
        spec = {
            "name": "two-stores",
            "sweep": {"cpu_model": ["Xeon X5670"], "seed": [1]},
            "base": {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]},
        }
        with Session(workspace=tmp_path / "ws") as session:
            a = session.campaign(spec, store=tmp_path / "store-a").result()
            b = session.campaign(spec, store=tmp_path / "store-b").result()
            assert a.store_directory != b.store_directory
            assert (tmp_path / "store-b").is_dir()  # second store executed
            assert b.frame.equals(a.frame)

    def test_bounded_resume_not_memoized_as_complete(self, tmp_path):
        spec = {
            "name": "partial-resume",
            "sweep": {"cpu_model": ["Xeon X5670"], "seed": [1, 2, 3]},
            "base": {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]},
        }
        with Session(workspace=tmp_path / "ws") as session:
            handle = session.campaign(spec)
            handle.result()  # create + complete the store
            session.clear_memo()
            partial = handle.resume(max_units=0)
            assert partial.completed == 3  # already complete on disk
            fresh = session.campaign(spec)
            assert not fresh.in_memory  # bounded resume left no memo

    def test_ephemeral_session_skips_dataset_persistence(self):
        with Session() as session:
            corpus = session.corpus(runs=RUNS, seed=SEED)
            dataset = session.dataset(corpus=corpus)
            dataset.result()
            assert dataset.in_memory  # memo still works
            assert dataset.key not in session._store_for("dataset")


def test_analyze_frame_is_workspace_free(warm_frame):
    from repro.session.session import analyze_frame

    result = analyze_frame(warm_frame, table1=False)
    assert result.unfiltered.equals(warm_frame)
    assert len(result.filtered) <= len(warm_frame)
    assert result.figures == ()
