"""CLI dispatch, exit codes and session-workspace behaviour of ``spectrends``.

The happy-path commands are also covered by the integration suite; this
module pins the contract the shell sees — argument wiring, return codes
(success 0, operator mistakes 2) and the ``--workspace`` caching semantics.
"""

import json

import pytest

from repro.cli.main import build_parser, main

RUNS = 40
SEED = 3


@pytest.fixture(scope="module")
def spec_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("specs") / "sweep.json"
    path.write_text(json.dumps({
        "name": "cli-sweep",
        "sweep": {"cpu_model": ["Xeon X5670"], "seed": [1, 2]},
        "base": {"load_levels": [1.0, 0.5, 0.2, 0.1, 0.0]},
    }))
    return str(path)


class TestParser:
    def test_workspace_flag_accepted_before_and_after_command(self):
        parser = build_parser()
        before = parser.parse_args(["--workspace", "ws", "analyze"])
        after = parser.parse_args(["analyze", "--workspace", "ws"])
        assert before.workspace == after.workspace == "ws"
        neither = parser.parse_args(["analyze"])
        assert neither.workspace is None

    def test_jobs_flag_positions(self):
        parser = build_parser()
        assert parser.parse_args(["--jobs", "4", "table1"]).jobs == 4
        assert parser.parse_args(["parse", "--jobs", "2", "--output", "x"]).jobs == 2
        assert parser.parse_args(["table1"]).jobs == 1

    def test_corpus_source_flags(self):
        args = build_parser().parse_args(["analyze", "--runs", "50", "--seed", "7"])
        assert args.corpus is None and args.runs == 50 and args.seed == 7


class TestExitCodes:
    def test_generate_and_parse_success(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["generate", "--output", str(corpus),
                     "--runs", str(RUNS), "--seed", str(SEED)]) == 0
        assert "report files" in capsys.readouterr().out
        csv = tmp_path / "runs.csv"
        assert main(["parse", "--corpus", str(corpus), "--output", str(csv)]) == 0
        assert csv.exists()

    def test_parse_with_implied_generation_uses_seed(self, tmp_path, capsys):
        # No --corpus: the dataset is derived through the session from
        # --runs/--seed.  The default parse-bypass never renders a report,
        # so no corpus files appear in the workspace.
        ws = tmp_path / "ws"
        csv = tmp_path / "runs.csv"
        assert main(["parse", "--workspace", str(ws), "--runs", str(RUNS),
                     "--seed", "11", "--output", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "parsed" in out and csv.exists()
        assert not (ws / "corpora").exists()

    def test_parse_text_path_materialises_corpus(self, tmp_path, capsys):
        # --text-path forces the render -> parse route: the corpus is
        # written into the workspace and the CSV is bit-identical to the
        # bypass-derived one.
        ws = tmp_path / "ws"
        bypass_csv = tmp_path / "bypass.csv"
        text_csv = tmp_path / "text.csv"
        assert main(["parse", "--workspace", str(ws), "--runs", str(RUNS),
                     "--seed", "11", "--output", str(bypass_csv)]) == 0
        assert main(["parse", "--workspace", str(tmp_path / "ws2"),
                     "--runs", str(RUNS), "--seed", "11", "--text-path",
                     "--output", str(text_csv)]) == 0
        capsys.readouterr()
        assert any((tmp_path / "ws2" / "corpora").iterdir())
        assert bypass_csv.read_text() == text_csv.read_text()

    def test_campaign_run_and_status_roundtrip(self, tmp_path, spec_file, capsys):
        store = tmp_path / "store"
        assert main(["campaign", "run", "--spec", spec_file,
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 simulated" in out
        assert main(["campaign", "status", "--store", str(store)]) == 0
        assert "2/2 units completed" in capsys.readouterr().out
        assert main(["campaign", "resume", "--store", str(store)]) == 0
        assert "2 cached" in capsys.readouterr().out

    def test_campaign_workspace_placement(self, tmp_path, spec_file, capsys):
        ws = tmp_path / "ws"
        assert main(["campaign", "run", "--spec", spec_file,
                     "--workspace", str(ws)]) == 0
        capsys.readouterr()
        stores = list((ws / "campaigns").iterdir())
        assert len(stores) == 1 and stores[0].name.startswith("cli-sweep-")

    def test_campaign_run_without_store_or_workspace_is_an_error(
        self, spec_file, capsys
    ):
        assert main(["campaign", "run", "--spec", spec_file]) == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_status_on_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "status", "--store", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "spec.json" in err

    def test_campaign_run_with_malformed_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["campaign", "run", "--spec", str(bad),
                     "--store", str(tmp_path / "s")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_resume_on_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "resume", "--store", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
        with pytest.raises(SystemExit):
            main([])


class TestWorkspaceCaching:
    def test_second_analyze_skips_parsing(self, tmp_path, capsys, monkeypatch):
        ws = tmp_path / "ws"
        argv = ["analyze", "--workspace", str(ws), "--runs", str(RUNS),
                "--seed", str(SEED), "--no-table1"]
        assert main(argv) == 0
        assert "Reproduction report" in capsys.readouterr().out

        # Warm invocation: generation, parsing and simulation must not run.
        import repro.parser
        import repro.reportgen
        from repro.simulator.director import RunDirector

        def fail(*args, **kwargs):  # pragma: no cover
            raise AssertionError("recomputed despite a warm workspace")

        monkeypatch.setattr(repro.parser, "parse_directory", fail)
        monkeypatch.setattr(repro.reportgen, "generate_corpus_files", fail)
        monkeypatch.setattr(RunDirector, "run", fail)
        assert main(argv) == 0
        assert "Reproduction report" in capsys.readouterr().out

    def test_figures_reuse_workspace_dataset(self, tmp_path, capsys, monkeypatch):
        ws = tmp_path / "ws"
        assert main(["parse", "--workspace", str(ws), "--runs", str(RUNS),
                     "--seed", str(SEED), "--output", str(tmp_path / "r.csv")]) == 0
        capsys.readouterr()

        import repro.parser

        def fail(*args, **kwargs):  # pragma: no cover
            raise AssertionError("re-parsed despite a warm workspace")

        monkeypatch.setattr(repro.parser, "parse_directory", fail)
        out_dir = tmp_path / "figs"
        assert main(["figures", "--workspace", str(ws), "--runs", str(RUNS),
                     "--seed", str(SEED), "--output", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and any(out_dir.glob("*.svg"))
